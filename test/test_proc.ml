(* Differential battery for the process backend: the tlp wire codec
   (round-trips, chunked reassembly, malformed-input rejection, the
   zero-allocation scalar path), collective-tree geometry, and
   proc:{1,2,4} bit-identical to the sequential stepper — labelings,
   per-round trace records, round ledgers and failure behavior — plus
   worker-crash containment and zombie-free cleanup.

   Ordering matters on OCaml 5: fork is forbidden once a domain has
   spawned, so every comparison here is against Engine.Seq / Flat with
   par:1 — never Shard or Par modes, which may spin up the domain
   team and would poison every later proc run in this process. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Topology = Tl_engine.Topology
module Engine = Tl_engine.Engine
module Flat = Tl_engine.Flat
module Trace = Tl_engine.Trace
module Plan = Tl_shard.Plan
module Wire = Tl_proc.Wire
module Collective = Tl_proc.Collective
module Proc = Tl_proc.Coordinator
module Ids = Tl_local.Ids
module Round_cost = Tl_local.Round_cost
module Span = Tl_obs.Span
module Theorem1 = Tl_core.Theorem1
module Complexity = Tl_core.Complexity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let proc_counts = [ 1; 2; 4 ]

(* The acceptance families: random trees, balanced regular trees, paths
   and forest unions. *)
let family ~n ~seed ~pick =
  let n = max 2 n in
  match pick mod 4 with
  | 0 -> Gen.random_tree ~n ~seed
  | 1 -> Gen.balanced_regular_tree ~delta:(2 + (seed mod 4)) ~n
  | 2 -> Gen.path n
  | _ -> Gen.forest_union ~n ~arboricity:2 ~seed

let flood_step ~round:_ ~node:_ s ~neighbors =
  s || List.exists (fun (_, _, su) -> su) neighbors

let mis_step ids ~round:_ ~node:v s ~neighbors =
  if s <> 0 then s
  else if List.exists (fun (_, _, su) -> su = 1) neighbors then 2
  else if
    List.for_all (fun (u, _, su) -> su <> 0 || ids.(u) < ids.(v)) neighbors
  then 1
  else 0

(* ---------- wire: scalar codec ---------- *)

let test_scalar_codec () =
  let b = Bytes.create 16 in
  List.iter
    (fun v ->
      Wire.put_i64 b 3 v;
      check (Printf.sprintf "i64 round-trip %d" v) true (Wire.get_i64 b 3 = v))
    [
      0; 1; -1; 2; -2; 42; -9999; max_int; min_int; max_int - 1; min_int + 1;
      0x1234_5678_9abc; -0x1234_5678_9abc; 1 lsl 61; -(1 lsl 61);
    ];
  List.iter
    (fun v ->
      Wire.put_u32 b 0 v;
      check (Printf.sprintf "u32 round-trip %d" v) true (Wire.get_u32 b 0 = v))
    [ 0; 1; 0xffff; 0xffff_ffff; 0x1234_5678 ];
  List.iter
    (fun v ->
      Wire.put_u16 b 9 v;
      check (Printf.sprintf "u16 round-trip %d" v) true (Wire.get_u16 b 9 = v))
    [ 0; 1; 255; 256; 0xffff ]

(* The steady-state halo path must not allocate: the scalar codec is
   byte-by-byte precisely so that no Int64 box appears per word. Allow a
   few words of slack for the Gc.minor_words float boxes themselves. *)
let test_codec_alloc_budget () =
  let b = Bytes.create 32 in
  Wire.put_i64 b 0 42;
  ignore (Wire.get_i64 b 0);
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    Wire.put_i64 b 0 (i * 1_000_003);
    if Wire.get_i64 b 0 <> i * 1_000_003 then assert false;
    Wire.put_u32 b 8 i;
    if Wire.get_u32 b 8 <> i then assert false;
    Wire.put_u16 b 12 (i land 0xffff);
    if Wire.get_u16 b 12 <> i land 0xffff then assert false
  done;
  let dw = Gc.minor_words () -. w0 in
  check (Printf.sprintf "codec allocates nothing (%.0f words)" dw) true
    (dw < 64.)

(* ---------- wire: typed frame round-trips ---------- *)

let mk_frame (pick, a, b, s) =
  let u8 x = x land 0xff
  and u16 x = x land 0xffff
  and u32 x = x land 0xffff_ffff in
  let by = Bytes.of_string s in
  let peers =
    Array.init
      (String.length s mod 5)
      (fun i -> u16 ((Char.code s.[i] * 7) + i))
  in
  match pick mod 6 with
  | 0 ->
    Wire.Prologue
      {
        rank = u16 a;
        size = u16 b;
        entry = u8 a;
        sched = u8 b;
        shape = u16 (a + b);
        slots = u16 ((a * 3) + 1);
        in_peers = peers;
        out_peers = Array.map (fun p -> u16 (p + 1)) peers;
        shard = by;
      }
  | 1 -> Wire.Halo { round = u32 a; src = u16 b; n = u32 (a + b); payload = by }
  | 2 ->
    Wire.Stats
      {
        round = u32 a;
        src = u16 b;
        active = a - b;
        changed = (a * b) - 7;
        unhalted = -a;
        halo_words = b;
      }
  | 3 -> Wire.Decision { action = 1 + (abs a mod 3); round = u32 b }
  | 4 ->
    Wire.Epilogue
      {
        src = u16 a;
        halo_words = b;
        exchange_rounds = a;
        states = (if b mod 2 = 0 then None else Some by);
      }
  | _ -> Wire.Error_frame { src = u16 a; failure = a mod 2 = 0; message = s }

let prop_frame_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips every frame kind"
    ~count:200
    QCheck.(
      quad (int_range 0 5) (int_range 0 1_000_000) (int_range 0 1_000_000)
        string)
    (fun spec -> Wire.decode (Wire.encode (mk_frame spec)) = mk_frame spec)

let test_extreme_stats_roundtrip () =
  let f =
    Wire.Stats
      {
        round = 0xffff_ffff;
        src = 0xffff;
        active = min_int;
        changed = max_int;
        unhalted = -1;
        halo_words = 0;
      }
  in
  check "min_int/max_int stats survive the wire" true
    (Wire.decode (Wire.encode f) = f)

(* ---------- wire: chunked reassembly ---------- *)

let prop_reassembly =
  QCheck.Test.make
    ~name:"Reassembler: arbitrary chunking preserves the stream" ~count:120
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 6)
           (quad (int_range 0 5) (int_range 0 100_000) (int_range 0 100_000)
              string))
        (int_range 0 100_000))
    (fun (specs, chop) ->
      let frames = List.map mk_frame specs in
      let stream =
        Bytes.concat Bytes.empty (List.map Wire.encode frames)
      in
      let total = Bytes.length stream in
      let r = Wire.Reassembler.create () in
      let out = ref [] in
      let pos = ref 0 in
      let i = ref 0 in
      while !pos < total do
        let len = min (1 + ((chop + (!i * 13)) mod 9)) (total - !pos) in
        out := !out @ Wire.Reassembler.feed r stream ~pos:!pos ~len;
        pos := !pos + len;
        incr i
      done;
      !out = frames && Wire.Reassembler.pending r = 0)

let proc_fails f =
  match f () with exception Wire.Proc_failure _ -> true | _ -> false

let test_wire_rejection () =
  let img = Wire.encode (Wire.Decision { action = Wire.a_step; round = 7 }) in
  (* truncated: length prefix promises more than the buffer holds *)
  check "truncated frame rejected" true
    (proc_fails (fun () -> Wire.decode (Bytes.sub img 0 (Bytes.length img - 1))));
  (* bad magic *)
  let bad = Bytes.copy img in
  Bytes.set bad 4 'X';
  check "bad magic rejected" true (proc_fails (fun () -> Wire.decode bad));
  (* version mismatch *)
  let badv = Bytes.copy img in
  Bytes.set badv 7 (Char.chr (Wire.version + 9));
  check "version mismatch rejected" true
    (proc_fails (fun () -> Wire.decode badv));
  (* trailing bytes inside the payload *)
  let fat = Bytes.cat img (Bytes.make 2 '\000') in
  Wire.put_u32 fat 0 (Bytes.length fat - 4);
  check "trailing payload bytes rejected" true
    (proc_fails (fun () -> Wire.decode fat));
  (* the reassembler rejects a malformed header as soon as it is fully
     visible (9 bytes), long before the frame completes *)
  let r = Wire.Reassembler.create () in
  check "reassembler rejects bad magic early" true
    (proc_fails (fun () -> Wire.Reassembler.feed r bad ~pos:0 ~len:9));
  (* an oversized length prefix is refused outright *)
  let huge = Bytes.make 8 '\000' in
  Wire.put_u32 huge 0 (Wire.max_frame_bytes + 1);
  let r2 = Wire.Reassembler.create () in
  check "oversized length prefix rejected" true
    (proc_fails (fun () -> Wire.Reassembler.feed r2 huge ~pos:0 ~len:8))

(* ---------- collective-tree geometry ---------- *)

let shapes =
  [
    Collective.Binomial; Collective.Nary 1; Collective.Nary 2;
    Collective.Nary 3; Collective.Nary 7;
  ]

let test_collective_geometry () =
  List.iter
    (fun shape ->
      let sname = Collective.shape_to_string shape in
      List.iter
        (fun size ->
          check (sname ^ ": root has no parent") true
            (Collective.parent shape 0 = -1);
          let edges = ref 0 in
          for r = 1 to size - 1 do
            let p = Collective.parent shape r in
            check (Printf.sprintf "%s size %d: parent below" sname size) true
              (p >= 0 && p < r);
            check
              (Printf.sprintf "%s size %d: child listed" sname size)
              true
              (List.mem r (Collective.children shape ~size p))
          done;
          for r = 0 to size - 1 do
            let cs = Collective.children shape ~size r in
            check (sname ^ ": children ascending") true
              (List.sort compare cs = cs);
            List.iter
              (fun c ->
                check (sname ^ ": child in range") true (c > r && c < size);
                check (sname ^ ": parent-of-child consistent") true
                  (Collective.parent shape c = r))
              cs;
            edges := !edges + List.length cs
          done;
          (* every non-root rank hangs off exactly one parent: the tree
             spans all of [0, size) *)
          check_int
            (Printf.sprintf "%s size %d: spanning" sname size)
            (max 0 (size - 1))
            !edges)
        [ 1; 2; 3; 5; 8; 16; 33 ])
    shapes

let test_shape_codes_and_env () =
  List.iter
    (fun s ->
      check ("code round-trip " ^ Collective.shape_to_string s) true
        (Collective.shape_of_code (Collective.code_of_shape s) = s))
    shapes;
  check "negative shape code rejected" true
    (match Collective.shape_of_code (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let with_fanout v f =
    Unix.putenv "TL_PROC_FANOUT" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "TL_PROC_FANOUT" "binomial") f
  in
  with_fanout "3" (fun () ->
      check "TL_PROC_FANOUT=3" true
        (Collective.shape_of_env () = Collective.Nary 3));
  with_fanout "binomial" (fun () ->
      check "TL_PROC_FANOUT=binomial" true
        (Collective.shape_of_env () = Collective.Binomial));
  with_fanout "" (fun () ->
      check "TL_PROC_FANOUT empty = default" true
        (Collective.shape_of_env () = Collective.Binomial));
  List.iter
    (fun v ->
      with_fanout v (fun () ->
          check ("TL_PROC_FANOUT=" ^ v ^ " rejected") true
            (match Collective.shape_of_env () with
            | exception Invalid_argument _ -> true
            | _ -> false)))
    [ "0"; "-2"; "wide" ]

(* ---------- shard image codec (the prologue's payload) ---------- *)

let prop_shard_image_roundtrip =
  QCheck.Test.make ~name:"Plan.encode_shard/decode_shard round-trip"
    ~count:40
    QCheck.(
      quad (int_range 2 150) (int_range 0 100_000) (int_range 0 3)
        (int_range 1 8))
    (fun (n, seed, pick, s) ->
      let g = family ~n ~seed ~pick in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let plan = Plan.build ~topo ~shards:s in
      Array.for_all
        (fun sh -> Plan.decode_shard (Plan.encode_shard sh) = sh)
        plan.Plan.shards)

let test_shard_image_rejection () =
  let topo = Topology.compile (Semi_graph.of_graph (Gen.path 12)) in
  let plan = Plan.build ~topo ~shards:3 in
  let img = Plan.encode_shard plan.Plan.shards.(1) in
  let rejects b =
    match Plan.decode_shard b with
    | exception Invalid_argument m ->
      String.length m >= 18 && String.sub m 0 18 = "Plan.decode_shard:"
    | _ -> false
  in
  check "truncated image rejected" true
    (rejects (Bytes.sub img 0 (Bytes.length img - 3)));
  let bad = Bytes.copy img in
  Bytes.set bad 0 'X';
  check "bad magic rejected" true (rejects bad);
  let badv = Bytes.copy img in
  Bytes.set badv 3 '\009';
  check "bad version rejected" true (rejects badv);
  check "trailing garbage rejected" true
    (rejects (Bytes.cat img (Bytes.make 3 'q')))

(* ---------- engine-level differential: states, rounds, traces ---------- *)

let record_key r =
  (r.Trace.round, r.Trace.active, r.Trace.changed, r.Trace.unhalted)

let outcome_and_records f mode =
  let trace = Trace.create ~label:"diff" () in
  let o = f ~mode ~trace in
  (o, List.map record_key (Trace.records trace))

let proc_matches_seq f =
  let seq_o, seq_r = outcome_and_records f Engine.Seq in
  List.for_all
    (fun p ->
      let o, r = outcome_and_records f (Engine.Proc p) in
      o.Engine.rounds = seq_o.Engine.rounds
      && o.Engine.states = seq_o.Engine.states
      && r = seq_r)
    proc_counts

let prop_flood_differential =
  QCheck.Test.make ~name:"flood: proc == seq (states + records)" ~count:20
    QCheck.(triple (int_range 2 150) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      List.for_all
        (fun sched ->
          proc_matches_seq (fun ~mode ~trace ->
              Engine.run_until_stable ~mode ~sched ~trace ~topo
                ~init:(fun v -> v = 0)
                ~step:flood_step ~equal:Bool.equal
                ~max_rounds:(Graph.n_nodes g + 1)
                ()))
        [ Engine.Active_set; Engine.Full_scan ])

let prop_mis_differential =
  QCheck.Test.make ~name:"MIS machine: proc == seq" ~count:20
    QCheck.(triple (int_range 2 150) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let n = Graph.n_nodes g in
      let ids = Ids.permuted ~n ~seed:(seed + 3) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      proc_matches_seq (fun ~mode ~trace ->
          Engine.run ~mode ~trace ~topo
            ~init:(fun _ -> 0)
            ~step:(mis_step ids)
            ~halted:(fun s -> s <> 0)
            ~max_rounds:(n + 1) ()))

let prop_run_rounds_differential =
  QCheck.Test.make ~name:"run_rounds: proc == seq, exact count" ~count:15
    QCheck.(triple (int_range 2 120) (int_range 0 100_000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let ids = Ids.permuted ~n:(Graph.n_nodes g) ~seed:(seed + 5) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let r = 3 + (seed mod 5) in
      let run mode =
        Engine.run_rounds ~mode ~topo
          ~init:(fun v -> ids.(v))
          ~step:(fun ~round:_ ~node:_ s ~neighbors ->
            List.fold_left (fun acc (_, _, su) -> max acc su) s neighbors)
          ~rounds:r ()
      in
      let seq = run Engine.Seq in
      seq.Engine.rounds = r
      && List.for_all
           (fun p ->
             let o = run (Engine.Proc p) in
             o.Engine.rounds = r && o.Engine.states = seq.Engine.states)
           proc_counts)

(* the tree shape only changes who forwards what: any fanout must leave
   results and ledgers untouched *)
let test_fanout_invariance () =
  let g = Gen.random_tree ~n:400 ~seed:19 in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  let flood mode =
    let o =
      Engine.run_until_stable ~mode ~topo
        ~init:(fun v -> v = 0)
        ~step:flood_step ~equal:Bool.equal ~max_rounds:401 ()
    in
    (o.Engine.states, o.Engine.rounds)
  in
  let seq = flood Engine.Seq in
  List.iter
    (fun fanout ->
      Unix.putenv "TL_PROC_FANOUT" fanout;
      Fun.protect
        ~finally:(fun () -> Unix.putenv "TL_PROC_FANOUT" "binomial")
        (fun () ->
          check
            (Printf.sprintf "proc:4 fanout %s = seq" fanout)
            true
            (flood (Engine.Proc 4) = seq)))
    [ "1"; "2"; "4"; "binomial" ]

(* ---------- failure parity and worker-crash containment ---------- *)

let failure_message f =
  match f () with exception Failure m -> Some m | _ -> None

let test_failure_parity () =
  let topo = Topology.compile (Semi_graph.of_graph (Gen.path 9)) in
  let frozen mode () =
    Engine.run ~mode ~topo
      ~init:(fun _ -> 0)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s)
      ~halted:(fun _ -> false)
      ~max_rounds:10 ()
  in
  let blinker mode () =
    Engine.run_until_stable ~mode ~topo
      ~init:(fun _ -> false)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> not s)
      ~equal:Bool.equal ~max_rounds:7 ()
  in
  let m_frozen = failure_message (frozen Engine.Seq) in
  let m_blinker = failure_message (blinker Engine.Seq) in
  check "seq frozen raises" true (m_frozen <> None);
  check "seq blinker raises" true (m_blinker <> None);
  List.iter
    (fun p ->
      Alcotest.(check (option string))
        (Printf.sprintf "frozen parity proc:%d" p)
        m_frozen
        (failure_message (frozen (Engine.Proc p)));
      Alcotest.(check (option string))
        (Printf.sprintf "blinker parity proc:%d" p)
        m_blinker
        (failure_message (blinker (Engine.Proc p))))
    proc_counts

let test_worker_crash_containment () =
  let n = 200 in
  let topo =
    Topology.compile (Semi_graph.of_graph (Gen.random_tree ~n ~seed:31))
  in
  (* a worker-side exception mid-run must surface as the same Failure
     the sequential stepper would raise... *)
  Alcotest.(check (option string))
    "worker exception surfaces verbatim" (Some "boom")
    (failure_message (fun () ->
         Engine.run_rounds ~mode:(Engine.Proc 4) ~topo
           ~init:(fun v -> v)
           ~step:(fun ~round ~node s ~neighbors:_ ->
             if round = 2 && node = n / 2 then failwith "boom";
             s + 1)
           ~rounds:4 ()));
  (* ...and leave nothing behind: every worker reaped, no zombies *)
  check "no zombie workers after a crashed run" true
    (match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
    | _ -> false);
  (* a healthy run right after the crash works on the same topology *)
  let o =
    Engine.run_rounds ~mode:(Engine.Proc 4) ~topo
      ~init:(fun v -> v)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s + 1)
      ~rounds:3 ()
  in
  check_int "backend recovers after a crash" 3 o.Engine.rounds

let test_unlinked_backend_message () =
  let saved = !Engine.proc_backend in
  Engine.proc_backend := None;
  Fun.protect
    ~finally:(fun () -> Engine.proc_backend := saved)
    (fun () ->
      let topo = Topology.compile (Semi_graph.of_graph (Gen.path 3)) in
      match
        Engine.run ~mode:(Engine.Proc 2) ~topo
          ~init:(fun _ -> 0)
          ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s)
          ~halted:(fun _ -> true)
          ~max_rounds:1 ()
      with
      | exception Failure m ->
        check "unlinked failure message" true
          (m = "Engine: proc mode requested but the tl_proc backend is \
                not linked")
      | _ -> Alcotest.fail "expected Failure without a backend")

let test_empty_present_set () =
  let g = Gen.path 4 in
  let topo =
    Topology.compile (Semi_graph.of_node_subset g (Array.make 4 false))
  in
  List.iter
    (fun p ->
      let o =
        Engine.run ~mode:(Engine.Proc p) ~topo
          ~init:(fun _ -> 0)
          ~step:(fun ~round:_ ~node:_ st ~neighbors:_ -> st + 1)
          ~halted:(fun _ -> false)
          ~max_rounds:5 ()
      in
      check_int (Printf.sprintf "empty view costs 0 rounds proc:%d" p) 0
        o.Engine.rounds)
    proc_counts

(* ---------- mode strings and direct API ---------- *)

let test_mode_strings () =
  List.iter
    (fun m ->
      check
        ("round-trip " ^ Engine.mode_to_string m)
        true
        (Engine.mode_of_string (Engine.mode_to_string m) = m))
    [ Engine.Proc 1; Engine.Proc 2; Engine.Proc 16 ];
  let saved = !Engine.default_procs in
  Engine.default_procs := 6;
  check "bare \"proc\" reads default_procs" true
    (Engine.mode_of_string "proc" = Engine.Proc 6);
  Engine.default_procs := saved;
  List.iter
    (fun s ->
      check ("rejects " ^ s) true
        (match Engine.mode_of_string s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ "proc:0"; "proc:x"; "proc:" ]

let test_direct_api () =
  let g = Gen.random_tree ~n:300 ~seed:7 in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  let seq =
    Engine.run_until_stable ~mode:Engine.Seq ~topo
      ~init:(fun v -> v = 0)
      ~step:flood_step ~equal:Bool.equal ~max_rounds:301 ()
  in
  let o =
    Proc.run_until_stable ~procs:3 ~topo
      ~init:(fun v -> v = 0)
      ~step:flood_step ~equal:Bool.equal ~max_rounds:301 ()
  in
  check "Proc.run_until_stable" true
    (o.Engine.states = seq.Engine.states && o.Engine.rounds = seq.Engine.rounds);
  let o2 =
    Proc.run ~procs:2 ~topo
      ~init:(fun v -> v = 0)
      ~step:flood_step
      ~halted:(fun s -> s)
      ~max_rounds:301 ()
  in
  check "Proc.run" true (o2.Engine.states = seq.Engine.states)

(* ---------- flat kernels over the wire ---------- *)

let test_flat_proc_parity () =
  let n = 400 in
  let g = Gen.random_tree ~n ~seed:13 in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  let seq_flood =
    Flat.run ~topo ~kernel:(Flat.Kernels.flood ()) ~max_rounds:(n + 1) ()
  in
  List.iter
    (fun p ->
      let o =
        Proc.run_flat ~procs:p ~topo ~kernel_for:(Proc.Kernels.flood ())
          ~max_rounds:(n + 1) ()
      in
      check
        (Printf.sprintf "flat flood proc:%d = flat seq" p)
        true
        (o.Flat.slab = seq_flood.Flat.slab
        && o.Flat.rounds = seq_flood.Flat.rounds))
    proc_counts;
  let ids = Ids.permuted ~n ~seed:14 in
  let seq_mis =
    Flat.run_until_stable ~topo
      ~kernel:(Flat.Kernels.mis_local_max ~ids)
      ~max_rounds:(n + 1) ()
  in
  List.iter
    (fun p ->
      let o =
        Proc.run_flat_until_stable ~procs:p ~topo
          ~kernel_for:(Proc.Kernels.mis_local_max ~ids)
          ~max_rounds:(n + 1) ()
      in
      check
        (Printf.sprintf "flat MIS proc:%d = flat seq" p)
        true
        (o.Flat.slab = seq_mis.Flat.slab && o.Flat.rounds = seq_mis.Flat.rounds))
    proc_counts;
  (* and the flat path agrees with the boxed proc path, column for
     column *)
  let boxed =
    Engine.run_until_stable ~mode:(Engine.Proc 2) ~topo
      ~init:(fun _ -> 0)
      ~step:(mis_step ids)
      ~equal:Int.equal ~max_rounds:(n + 1) ()
  in
  check "flat column = boxed proc states" true
    (Array.to_list (Flat.column seq_mis ~slot:0)
    = Array.to_list boxed.Engine.states)

(* ---------- spans: the per-worker observability contract ---------- *)

let rec find_spans pred s =
  let here = if pred s then [ s ] else [] in
  here @ List.concat_map (find_spans pred) (Span.children s)

let test_proc_spans () =
  let g = Gen.random_tree ~n:500 ~seed:11 in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  Plan.clear_cache ();
  let (), root =
    Span.run "proc-span-test" (fun () ->
        ignore
          (Engine.run_until_stable ~mode:(Engine.Proc 4) ~topo
             ~init:(fun v -> v = 0)
             ~step:flood_step ~equal:Bool.equal ~max_rounds:501 ()))
  in
  let rank_spans =
    find_spans
      (fun s ->
        List.mem (Span.name s) [ "proc:0"; "proc:1"; "proc:2"; "proc:3" ])
      root
  in
  check_int "one child span per worker" 4 (List.length rank_spans);
  List.iter
    (fun s ->
      let c = Span.counters s in
      List.iter
        (fun key ->
          check
            (Printf.sprintf "%s carries %s" (Span.name s) key)
            true (List.mem_assoc key c))
        [
          "proc:owned"; "proc:halo"; "proc:cut_edges"; "proc:halo_words";
          "proc:imbalance"; "proc:exchange_rounds";
        ])
    rank_spans;
  let root_counters = Span.counters root in
  check_int "aggregate proc count" 4 (List.assoc "proc:procs" root_counters);
  check "plan miss counted" true
    (List.mem_assoc "proc:plan_miss" root_counters);
  check "halo traffic at least cut size" true
    (List.assoc "proc:halo_words" root_counters
    >= List.assoc "proc:cut_edges" root_counters / 2)

(* ---------- theorem-level: labeling and ledger end to end ---------- *)

module Labeling = Tl_problems.Labeling

let mis_spec =
  {
    Theorem1.problem = Tl_problems.Mis.problem;
    base_algorithm = Tl_symmetry.Algos.mis;
    solve_edge_list = Tl_problems.Mis.solve_edge_list;
  }

let test_theorem1_proc_bit_identical () =
  let tree = Gen.random_tree ~n:150 ~seed:23 in
  let ids = Ids.permuted ~n:150 ~seed:24 in
  let labels r =
    List.init (Graph.n_half_edges tree) (Labeling.get r.Theorem1.labeling)
  in
  let seq = Theorem1.run ~spec:mis_spec ~tree ~ids ~f:Complexity.f_linear () in
  List.iter
    (fun p ->
      let r =
        Theorem1.run ~engine:(Engine.Proc p) ~spec:mis_spec ~tree ~ids
          ~f:Complexity.f_linear ()
      in
      check
        (Printf.sprintf "Theorem 12 MIS labeling proc:%d" p)
        true
        (labels r = labels seq);
      check
        (Printf.sprintf "Theorem 12 MIS ledger proc:%d" p)
        true
        (Round_cost.phases r.Theorem1.cost
        = Round_cost.phases seq.Theorem1.cost))
    [ 2; 4 ]

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "tl_proc"
    [
      ( "wire",
        [
          Alcotest.test_case "scalar codec round-trips" `Quick
            test_scalar_codec;
          Alcotest.test_case "scalar codec allocation budget" `Quick
            test_codec_alloc_budget;
          Alcotest.test_case "extreme stats round-trip" `Quick
            test_extreme_stats_roundtrip;
          Alcotest.test_case "malformed input rejected" `Quick
            test_wire_rejection;
        ]
        @ qsuite [ prop_frame_roundtrip; prop_reassembly ] );
      ( "collective",
        [
          Alcotest.test_case "tree geometry" `Quick test_collective_geometry;
          Alcotest.test_case "shape codes and TL_PROC_FANOUT" `Quick
            test_shape_codes_and_env;
        ] );
      ( "plan-codec",
        qsuite [ prop_shard_image_roundtrip ]
        @ [
            Alcotest.test_case "malformed shard image rejected" `Quick
              test_shard_image_rejection;
          ] );
      ( "differential",
        qsuite
          [
            prop_flood_differential;
            prop_mis_differential;
            prop_run_rounds_differential;
          ]
        @ [
            Alcotest.test_case "fanout invariance" `Quick
              test_fanout_invariance;
            Alcotest.test_case "flat kernels over the wire" `Quick
              test_flat_proc_parity;
          ] );
      ( "failure",
        [
          Alcotest.test_case "max_rounds and stall parity" `Quick
            test_failure_parity;
          Alcotest.test_case "worker crash containment" `Quick
            test_worker_crash_containment;
          Alcotest.test_case "unlinked backend message" `Quick
            test_unlinked_backend_message;
          Alcotest.test_case "empty present set" `Quick
            test_empty_present_set;
        ] );
      ( "api",
        [
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
          Alcotest.test_case "direct Proc.run wrappers" `Quick
            test_direct_api;
        ] );
      ( "obs",
        [ Alcotest.test_case "per-worker spans" `Quick test_proc_spans ] );
      ( "theorems",
        [
          Alcotest.test_case "Theorem 12 MIS proc == seq" `Quick
            test_theorem1_proc_bit_identical;
        ] );
    ]
