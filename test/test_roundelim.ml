(* Tests for the round elimination engine. *)

module Re = Tl_roundelim.Re

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_make_normalizes () =
  let p =
    Re.make ~name:"t" ~alphabet:[ "a"; "b" ] ~node_arity:2 ~edge_arity:2
      ~node:[ [ "b"; "a" ]; [ "a"; "b" ] ]
      ~edge:[ [ "a"; "a" ] ]
  in
  check_int "deduplicated" 1 (List.length p.Re.node);
  check "sorted" true (p.Re.node = [ [ 0; 1 ] ])

let test_make_rejects () =
  check "unknown label" true
    (try
       Re.make ~name:"t" ~alphabet:[ "a" ] ~node_arity:1 ~edge_arity:2
         ~node:[ [ "z" ] ] ~edge:[]
       |> ignore;
       false
     with Invalid_argument _ -> true);
  check "wrong arity" true
    (try
       Re.make ~name:"t" ~alphabet:[ "a" ] ~node_arity:2 ~edge_arity:2
         ~node:[ [ "a" ] ] ~edge:[]
       |> ignore;
       false
     with Invalid_argument _ -> true)

let test_sinkless_orientation_fixed_point () =
  List.iter
    (fun delta ->
      let so = Re.sinkless_orientation ~delta in
      check
        (Printf.sprintf "SO fixed point (delta=%d)" delta)
        true (Re.is_fixed_point so))
    [ 3; 4; 5 ]

let test_so_structure () =
  let so = Re.sinkless_orientation ~delta:3 in
  check_int "labels" 2 (Array.length so.Re.alphabet);
  check_int "node configs" 3 (List.length so.Re.node);
  check_int "edge configs" 1 (List.length so.Re.edge);
  let r = Re.re so in
  check_int "R keeps 2 labels" 2 (Array.length r.Re.alphabet)

let test_perfect_matching_fixed_point () =
  (* perfect matching on regular trees is unsolvable in o(n); its RE
     trajectory does not grow either — it is a fixed point *)
  check "pm fixed" true (Re.is_fixed_point (Re.perfect_matching ~delta:3))

let test_2coloring_fixed_point () =
  check "2col fixed" true (Re.is_fixed_point (Re.weak_2coloring ~delta:3))

let test_mis_grows () =
  let traj = Re.trajectory ~steps:3 (Re.mis ~delta:3) in
  check "at least 4 steps" true (List.length traj >= 4);
  let sizes = List.map (fun (a, _, _) -> a) traj in
  (match sizes with
  | a0 :: a1 :: rest ->
    check "alphabet grows" true (a1 > a0);
    (match rest with
    | a2 :: _ -> check "keeps growing" true (a2 > a1)
    | [] -> ())
  | _ -> Alcotest.fail "trajectory too short");
  ignore sizes

let test_equivalence_renaming () =
  let p1 =
    Re.make ~name:"p1" ~alphabet:[ "x"; "y" ] ~node_arity:2 ~edge_arity:2
      ~node:[ [ "x"; "x" ] ]
      ~edge:[ [ "x"; "y" ] ]
  in
  let p2 =
    Re.make ~name:"p2" ~alphabet:[ "y"; "x" ] ~node_arity:2 ~edge_arity:2
      ~node:[ [ "y"; "y" ] ]
      ~edge:[ [ "y"; "x" ] ]
  in
  (* p2 is p1 with labels swapped: label 0 of p2 ("y") plays the role of
     label 0 of p1 ("x") under the identity, so they are equivalent *)
  check "equivalent up to renaming" true (Re.equivalent p1 p2);
  let p3 =
    Re.make ~name:"p3" ~alphabet:[ "x"; "y" ] ~node_arity:2 ~edge_arity:2
      ~node:[ [ "x"; "y" ] ]
      ~edge:[ [ "x"; "y" ] ]
    in
  check "different problems differ" false (Re.equivalent p1 p3)

let test_trivial_problem_stays_trivial () =
  (* all configurations allowed: R keeps it fully permissive *)
  let p =
    Re.make ~name:"trivial" ~alphabet:[ "a" ] ~node_arity:3 ~edge_arity:2
      ~node:[ [ "a"; "a"; "a" ] ]
      ~edge:[ [ "a"; "a" ] ]
  in
  check "fixed" true (Re.is_fixed_point p)

let test_re_dual_roundtrip_on_so () =
  (* R̄(R(SO)) is a reformulation of SO, not a syntactic copy: the dual
     step compresses the node side to the single maximal configuration
     {O}{I,O}{I,O} and widens the edge side. Pin down that structure. *)
  let so = Re.sinkless_orientation ~delta:3 in
  let back = Re.re_dual (Re.re so) in
  check_int "two labels" 2 (Array.length back.Re.alphabet);
  check_int "one node configuration" 1 (List.length back.Re.node);
  check_int "two edge configurations" 2 (List.length back.Re.edge);
  (* and the reformulation is itself a fixed point of the same roundtrip *)
  let back2 = Re.re_dual (Re.re back) in
  check "roundtrip stabilizes" true (Re.equivalent back back2)

let test_zero_round () =
  let trivial =
    Re.make ~name:"trivial" ~alphabet:[ "a" ] ~node_arity:3 ~edge_arity:2
      ~node:[ [ "a"; "a"; "a" ] ]
      ~edge:[ [ "a"; "a" ] ]
  in
  check "trivial is 0-round" true (Re.zero_round_solvable trivial);
  check "SO is not 0-round" false
    (Re.zero_round_solvable (Re.sinkless_orientation ~delta:3));
  check "pm is not 0-round" false
    (Re.zero_round_solvable (Re.perfect_matching ~delta:3));
  check "mis is not 0-round" false (Re.zero_round_solvable (Re.mis ~delta:3))

let test_lower_bound_loop () =
  let trivial =
    Re.make ~name:"trivial" ~alphabet:[ "a" ] ~node_arity:3 ~edge_arity:2
      ~node:[ [ "a"; "a"; "a" ] ]
      ~edge:[ [ "a"; "a" ] ]
  in
  (match Re.lower_bound_loop trivial with
  | Re.Zero_round_after 0 -> ()
  | _ -> Alcotest.fail "trivial should be 0-round immediately");
  (match Re.lower_bound_loop (Re.sinkless_orientation ~delta:3) with
  | Re.Fixed_point_at _ -> ()
  | Re.Zero_round_after _ -> Alcotest.fail "SO must not become 0-round"
  | Re.Still_growing _ -> Alcotest.fail "SO must reach a fixed point");
  match Re.lower_bound_loop (Re.mis ~delta:3) with
  | Re.Zero_round_after _ -> Alcotest.fail "MIS must not become 0-round so fast"
  | Re.Fixed_point_at _ | Re.Still_growing _ -> ()

let prop_re_preserves_arities =
  QCheck.Test.make ~name:"re preserves arities" ~count:20
    QCheck.(int_range 3 5)
    (fun delta ->
      let p = Re.mis ~delta in
      let r = Re.re p in
      r.Re.node_arity = p.Re.node_arity && r.Re.edge_arity = p.Re.edge_arity)

let () =
  Alcotest.run "tl_roundelim"
    [
      ( "construction",
        [
          Alcotest.test_case "normalization" `Quick test_make_normalizes;
          Alcotest.test_case "validation" `Quick test_make_rejects;
        ] );
      ( "fixed_points",
        [
          Alcotest.test_case "sinkless orientation" `Quick test_sinkless_orientation_fixed_point;
          Alcotest.test_case "SO structure" `Quick test_so_structure;
          Alcotest.test_case "perfect matching" `Quick test_perfect_matching_fixed_point;
          Alcotest.test_case "2-coloring" `Quick test_2coloring_fixed_point;
          Alcotest.test_case "trivial problem" `Quick test_trivial_problem_stays_trivial;
          Alcotest.test_case "R̄ ∘ R on SO" `Quick test_re_dual_roundtrip_on_so;
        ] );
      ( "growth",
        [ Alcotest.test_case "MIS trajectory grows" `Quick test_mis_grows ] );
      ( "lower_bound_loop",
        [
          Alcotest.test_case "zero-round solvability" `Quick test_zero_round;
          Alcotest.test_case "loop outcomes" `Quick test_lower_bound_loop;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "renaming" `Quick test_equivalence_renaming;
          QCheck_alcotest.to_alcotest prop_re_preserves_arities;
        ] );
    ]
