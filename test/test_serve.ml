(* The serving layer: job-queue semantics, protocol round-trips, knob
   validation, the admission/batching/drain cycle with backpressure, and
   the differential battery — a daemon-served request is bit-identical
   (digest, rounds, ledger) to a direct one-shot run for every
   (engine, shards, pool) knob. The tail runs the real daemon binary as
   a subprocess over pipes. *)

module Json = Tl_obs.Json
module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Ids = Tl_local.Ids
module Round_cost = Tl_local.Round_cost
module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Pool = Tl_engine.Pool
module Pipeline = Tl_core.Pipeline
module P = Tl_serve.Protocol
module Jobq = Tl_serve.Jobq
module Server = Tl_serve.Server
module Metrics = Tl_obs.Metrics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let qsuite = List.map (QCheck_alcotest.to_alcotest ~verbose:false)

(* ---------- jobq ---------- *)

let test_jobq_basics () =
  (match Jobq.create ~depth:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "depth 0 must raise");
  let q = Jobq.create ~depth:3 in
  check_int "depth" 3 (Jobq.depth q);
  check "empty" true (Jobq.is_empty q);
  check "admit 1" true (Jobq.admit q 1);
  check "admit 2" true (Jobq.admit q 2);
  check "admit 3" true (Jobq.admit q 3);
  check "admit 4 rejected" false (Jobq.admit q 4);
  check "admit 5 rejected" false (Jobq.admit q 5);
  check_int "length" 3 (Jobq.length q);
  check "drain order" true (Jobq.drain q = [ 1; 2; 3 ]);
  check "drained empty" true (Jobq.is_empty q);
  (* counters are totals, not per-cycle *)
  check "admit after drain" true (Jobq.admit q 6);
  check_int "admitted total" 4 (Jobq.admitted q);
  check_int "rejected total" 2 (Jobq.rejected q)

(* ---------- protocol round-trips ---------- *)

let test_request_roundtrip () =
  let specs =
    [
      P.Family { family = "path"; n = 17; seed = 9; a = 2; delta = 3 };
      P.Edges { n = 4; edges = [ (0, 1); (1, 2); (2, 3) ]; seed = 5 };
    ]
  in
  List.iter
    (fun spec ->
      let r =
        P.request ~id:"x1" ~problem:"matching" ~method_:"direct" ~spec ~k:6
          ~engine:"shard:3" ~shards:3 ~pool:4 ~want_span:false ()
      in
      match P.incoming_of_json (P.request_to_json r) with
      | Ok (P.Request r') -> check "request round-trips" true (r = r')
      | _ -> Alcotest.fail "request did not round-trip")
    specs;
  (* defaults mirror the CLI defaults *)
  (match P.incoming_of_json (Json.parse "{\"v\":1}") with
  | Ok (P.Request r) ->
    check "default problem" true (r.P.problem = "mis");
    check "default method" true (r.P.method_ = "transform");
    check "default engine" true (r.P.engine = "seq");
    check_int "default shards" 4 r.P.shards;
    check_int "default pool" 1 r.P.pool;
    check "default spec" true (r.P.spec = P.default_spec)
  | _ -> Alcotest.fail "bare request rejected");
  (* version gate *)
  (match P.incoming_of_json (Json.parse "{\"v\":2}") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "future version accepted");
  match P.incoming_of_json (Json.parse "{\"v\":1,\"id\":\"c\",\"cmd\":\"ping\"}") with
  | Ok (P.Control ("c", P.Ping)) -> ()
  | _ -> Alcotest.fail "ping control did not parse"

let test_response_roundtrip () =
  let cases =
    [
      {
        P.rid = "a";
        outcome =
          P.Solved
            {
              P.digest = "00ff";
              total_rounds = 12;
              ledger = [ ("decompose", 5); ("base", 7) ];
              valid = true;
              engine_rounds = 13;
              cache_hit = true;
              span = None;
            };
      };
      { P.rid = "b"; outcome = P.Pong };
      { P.rid = "c"; outcome = P.Stats_report [ ("served", 3) ] };
      {
        P.rid = "m";
        outcome =
          P.Metrics_report
            (Json.Obj
               [
                 ("tl_metrics", Json.Num 1.);
                 ("counters", Json.Obj [ ("serve_served_total", Json.Num 3.) ]);
                 ("gauges", Json.Obj []);
                 ("histograms", Json.Obj []);
               ]);
      };
      {
        P.rid = "t";
        outcome =
          P.Tail_report
            [
              Json.Obj
                [
                  ("ts", Json.Num 1.5); ("kind", Json.Str "request");
                  ("key", Json.Str "k"); ("detail", Json.Str "");
                  ("outcome", Json.Str "ok"); ("latency_s", Json.Num 0.01);
                ];
            ];
      };
      { P.rid = "d"; outcome = P.Error (P.Rejected, "queue full (depth 2)") };
      { P.rid = "e"; outcome = P.Error (P.Bad_request, "nope") };
      { P.rid = "f"; outcome = P.Error (P.Failed, "boom") };
    ]
  in
  List.iter
    (fun resp ->
      match P.response_of_json (P.response_to_json resp) with
      | Ok resp' -> check ("round-trip " ^ resp.P.rid) true (resp = resp')
      | Error msg -> Alcotest.fail ("response did not parse: " ^ msg))
    cases

(* Edge-list spec keys digest every endpoint: lists that agree on a
   long prefix (where Hashtbl.hash stops looking) still key apart, so
   the instance cache and the batcher never conflate them. *)
let test_spec_key_edges () =
  let path_edges n = List.init (n - 1) (fun i -> (i, i + 1)) in
  let key edges = P.spec_key (P.Edges { n = 40; edges; seed = 1 }) in
  let e1 = path_edges 40 in
  let e2 = List.mapi (fun i e -> if i = 38 then (0, 39) else e) e1 in
  check "equal lists, equal keys" true (key e1 = key (path_edges 40));
  check "shared prefix, distinct keys" false (key e1 = key e2);
  (* a proper prefix keys apart too: the edge count is part of the key *)
  let prefix = List.filteri (fun i _ -> i < 38) e1 in
  check "proper prefix, distinct keys" false (key e1 = key prefix);
  check "seed is part of the key" false
    (key e1 = P.spec_key (P.Edges { n = 40; edges = e1; seed = 2 }))

(* ---------- knob validation ---------- *)

let test_resolve_knobs () =
  let ok engine shards pool n =
    match P.resolve_knobs ~engine ~shards ~pool ~n with
    | Ok m -> m
    | Error msg -> Alcotest.fail ("unexpected rejection: " ^ msg)
  in
  let err engine shards pool n =
    match P.resolve_knobs ~engine ~shards ~pool ~n with
    | Error msg -> msg
    | Ok _ -> Alcotest.fail "expected a rejection"
  in
  check "seq" true (ok "seq" 4 1 10 = Engine.Seq);
  check "par:2" true (ok "par:2" 4 1 10 = Engine.Par 2);
  check "inline shard count wins" true (ok "shard:3" 4 1 10 = Engine.Shard 3);
  (* bare "shard" resolves against the request's shards knob, and the
     global default is untouched afterwards *)
  let saved = !Engine.default_shards in
  check "bare shard uses the knob" true (ok "shard" 7 1 10 = Engine.Shard 7);
  check_int "default_shards untouched" saved !Engine.default_shards;
  check "shard count over n" true
    (Tl_serve.Protocol.resolve_knobs ~engine:"shard" ~shards:11 ~pool:1 ~n:10
    |> Result.is_error);
  let m = err "shard:50" 4 1 20 in
  check "friendly shards>n message" true
    (String.length m > 0 && m.[0] = 's' (* "shard count ..." *));
  ignore (err "warp" 4 1 10);
  ignore (err "seq" 0 1 10);
  ignore (err "seq" 4 0 10);
  ignore (err "seq" 4 65 10);
  ignore (err "seq" 4 1 0);
  (* unlinked backend: the only untestable-from-a-binary path, since the
     runtime force-links tl_shard — simulate by pulling the hook out *)
  let saved_backend = !Engine.shard_backend in
  Engine.shard_backend := None;
  Fun.protect
    ~finally:(fun () -> Engine.shard_backend := saved_backend)
    (fun () ->
      let m = err "shard:2" 2 1 10 in
      check "unlinked backend is a friendly error" true
        (m = "engine shard requested but no shard backend is linked (build \
              against tl_shard)");
      check "seq unaffected" true (ok "seq" 4 1 10 = Engine.Seq))

(* ---------- differential battery ---------- *)

(* The reference side rebuilds the instance and runs the pipelines
   directly — no serve code beyond the shared digest — under globally
   set knobs, exactly like a one-shot CLI run. *)

let build_ref_graph = function
  | P.Edges { n; edges; _ } -> Graph.of_edges ~n edges
  | P.Family { family; n; seed; a; delta } -> (
    match family with
    | "random-tree" -> Gen.random_tree ~n ~seed
    | "path" -> Gen.path n
    | "balanced-tree" -> Gen.balanced_regular_tree ~delta ~n
    | "forest-union" -> Gen.forest_union ~n ~arboricity:a ~seed
    | other -> failwith ("unexpected test family " ^ other))

let with_ref_knobs ~mode ~shards ~pool f =
  let sm = !Engine.default_mode
  and ss = !Engine.default_shards
  and sp = !Pool.default_workers in
  Engine.default_mode := mode;
  Engine.default_shards := shards;
  Pool.default_workers := pool;
  Fun.protect
    ~finally:(fun () ->
      Engine.default_mode := sm;
      Engine.default_shards := ss;
      Pool.default_workers := sp)
    f

let reference (r : P.request) ~mode =
  let g = build_ref_graph r.P.spec in
  let seed =
    match r.P.spec with P.Family { seed; _ } | P.Edges { seed; _ } -> seed
  in
  let ids = Ids.permuted ~n:(Graph.n_nodes g) ~seed:(seed + 1) in
  let a = match r.P.spec with P.Family { a; _ } -> a | P.Edges _ -> 1 in
  with_ref_knobs ~mode ~shards:r.P.shards ~pool:r.P.pool (fun () ->
      match (r.P.problem, r.P.method_) with
      | "flood", _ ->
        let topo = Topology.compile (Semi_graph.of_graph g) in
        let o =
          Engine.run_until_stable ~mode ~topo
            ~init:(fun v -> v = 0)
            ~step:(fun ~round:_ ~node:_ s ~neighbors ->
              s || List.exists (fun (_, _, su) -> su) neighbors)
            ~equal:Bool.equal
            ~max_rounds:(Graph.n_nodes g + 1)
            ()
        in
        ( P.digest_array (fun b -> if b then 1 else 0) o.Engine.states,
          o.Engine.rounds,
          [ ("flood", o.Engine.rounds) ] )
      | "mis", "transform" ->
        let r = Pipeline.mis_on_tree ~tree:g ~ids () in
        ( P.digest_labeling ~graph:g r.Pipeline.labeling,
          r.Pipeline.total_rounds,
          Round_cost.phases r.Pipeline.cost )
      | "coloring", "direct" ->
        let r = Pipeline.coloring_direct ~graph:g ~ids in
        ( P.digest_labeling ~graph:g r.Pipeline.labeling,
          r.Pipeline.total_rounds,
          Round_cost.phases r.Pipeline.cost )
      | "matching", "transform" ->
        let r = Pipeline.matching_on_graph ~graph:g ~a ~ids () in
        ( P.digest_labeling ~graph:g r.Pipeline.labeling,
          r.Pipeline.total_rounds,
          Round_cost.phases r.Pipeline.cost )
      | "edge-coloring", "direct" ->
        let r = Pipeline.edge_coloring_direct ~graph:g ~ids in
        ( P.digest_labeling ~graph:g r.Pipeline.labeling,
          r.Pipeline.total_rounds,
          Round_cost.phases r.Pipeline.cost )
      | p, m -> failwith ("unexpected test problem " ^ p ^ "/" ^ m))

let combo_gen =
  QCheck.Gen.(
    let* pick = int_range 0 4 in
    let* fam = int_range 0 2 in
    let* n = int_range 20 80 in
    let* seed = int_range 1 1000 in
    let* eng = int_range 0 2 in
    let* pool = oneofl [ 1; 4 ] in
    let problem, method_ =
      match pick with
      | 0 -> ("flood", "transform")
      | 1 -> ("mis", "transform")
      | 2 -> ("coloring", "direct")
      | 3 -> ("matching", "transform")
      | _ -> ("edge-coloring", "direct")
    in
    (* mis/transform needs a tree instance *)
    let family =
      match fam with
      | 0 -> "random-tree"
      | 1 -> "path"
      | _ -> if problem = "mis" then "balanced-tree" else "forest-union"
    in
    let a = if family = "forest-union" then 2 else 1 in
    let spec = P.Family { family; n; seed; a; delta = 3 } in
    let engine, shards =
      match eng with 0 -> ("seq", 4) | 1 -> ("shard", 2) | _ -> ("shard:3", 3)
    in
    return
      (P.request ~id:"q" ~problem ~method_ ~spec ~engine ~shards ~pool
         ~want_span:false ()))

let combo_print (r : P.request) =
  Printf.sprintf "%s/%s %s engine=%s shards=%d pool=%d" r.P.problem r.P.method_
    (P.spec_key r.P.spec) r.P.engine r.P.shards r.P.pool

let prop_serve_differential =
  QCheck.Test.make ~count:40
    ~name:"served response bit-identical to a one-shot run"
    (QCheck.make ~print:combo_print combo_gen)
    (fun r ->
      let server = Server.create () in
      let resp = Server.handle_request server r in
      let resp2 = Server.handle_request server r in
      match (resp.P.outcome, resp2.P.outcome) with
      | P.Solved s, P.Solved s2 ->
        let mode =
          match
            P.resolve_knobs ~engine:r.P.engine ~shards:r.P.shards
              ~pool:r.P.pool ~n:(P.spec_n r.P.spec)
          with
          | Ok m -> m
          | Error msg -> QCheck.Test.fail_report msg
        in
        let digest, rounds, ledger = reference r ~mode in
        if s.P.digest <> digest then
          QCheck.Test.fail_reportf "digest %s <> reference %s" s.P.digest
            digest;
        if s.P.total_rounds <> rounds then
          QCheck.Test.fail_reportf "rounds %d <> reference %d" s.P.total_rounds
            rounds;
        if s.P.ledger <> ledger then QCheck.Test.fail_report "ledger differs";
        if not s.P.valid then QCheck.Test.fail_report "labeling invalid";
        (* the warm repeat is served from cache and still bit-identical *)
        if not s2.P.cache_hit then QCheck.Test.fail_report "no warm cache hit";
        s2.P.digest = digest && s2.P.total_rounds = rounds
        && s2.P.ledger = ledger
      | o, _ ->
        QCheck.Test.fail_reportf "request failed: %s"
          (match o with
          | P.Error (_, m) -> m
          | _ -> "unexpected outcome kind"))

(* ---------- the cycle: batching, ordering, backpressure ---------- *)

let req_line ?(id = "r") ?(problem = "flood") ?(n = 40) ?(seed = 1)
    ?(engine = "seq") () =
  Printf.sprintf
    "{\"v\":1,\"id\":%S,\"problem\":%S,\"engine\":%S,\"span\":false,\"graph\":{\"family\":\"random-tree\",\"n\":%d,\"seed\":%d}}"
    id problem engine n seed

let parse_resp line =
  match P.response_of_json (Json.parse (String.trim line)) with
  | Ok r -> r
  | Error msg -> Alcotest.fail ("bad response line: " ^ msg)

let test_cycle_batching_and_order () =
  let server = Server.create () in
  let lines =
    [
      req_line ~id:"a1" ~seed:1 ();
      req_line ~id:"b1" ~seed:2 ();
      req_line ~id:"a2" ~seed:1 ();
      req_line ~id:"b2" ~seed:2 ();
    ]
  in
  let resps = List.map parse_resp (Server.handle_lines server lines) in
  check "responses in arrival order" true
    (List.map (fun r -> r.P.rid) resps = [ "a1"; "b1"; "a2"; "b2" ]);
  let hit id =
    match
      (List.find (fun r -> r.P.rid = id) resps).P.outcome
    with
    | P.Solved s -> s.P.cache_hit
    | _ -> Alcotest.fail (id ^ " not solved")
  in
  (* batching: the repeat of each spec lands on the cached instance even
     within a single cycle *)
  check "a1 cold" false (hit "a1");
  check "b1 cold" false (hit "b1");
  check "a2 warm" true (hit "a2");
  check "b2 warm" true (hit "b2");
  let digest id =
    match (List.find (fun r -> r.P.rid = id) resps).P.outcome with
    | P.Solved s -> s.P.digest
    | _ -> assert false
  in
  check_str "batched repeat identical" (digest "a1") (digest "a2");
  let st = Server.stats server in
  check_int "one batch" 1 (List.assoc "batches" st);
  check_int "batch size" 4 (List.assoc "max_batch" st);
  check_int "two cold instances" 2 (List.assoc "serve:cache_miss" st);
  check_int "two warm instances" 2 (List.assoc "serve:cache_hit" st)

let test_cycle_backpressure () =
  let server =
    Server.create
      ~config:{ Server.default_config with Server.depth = 2 }
      ()
  in
  let lines = List.init 5 (fun i -> req_line ~id:(Printf.sprintf "r%d" i) ()) in
  let resps = List.map parse_resp (Server.handle_lines server lines) in
  let outcomes =
    List.map
      (fun r ->
        match r.P.outcome with
        | P.Solved _ -> "ok"
        | P.Error (P.Rejected, msg) ->
          check "rejection names the depth" true
            (msg = "queue full (depth 2)");
          "rejected"
        | _ -> "other")
      resps
  in
  check "first fills the queue, rest rejected" true
    (outcomes = [ "ok"; "ok"; "rejected"; "rejected"; "rejected" ]);
  let st = Server.stats server in
  check_int "rejections counted" 3 (List.assoc "rejected" st);
  check_int "served counted" 2 (List.assoc "served" st);
  (* the next cycle starts from an empty queue *)
  let resps2 = List.map parse_resp (Server.handle_lines server [ req_line () ]) in
  check "queue drained between cycles" true
    (match (List.hd resps2).P.outcome with P.Solved _ -> true | _ -> false)

let test_cycle_errors_and_controls () =
  let server = Server.create () in
  let lines =
    [
      "{oops";
      "{\"v\":1,\"id\":\"u\",\"problem\":\"frobnicate\",\"span\":false}";
      "{\"v\":1,\"id\":\"p\",\"cmd\":\"ping\"}";
      "{\"v\":1,\"id\":\"s\",\"cmd\":\"stats\"}";
      req_line ~id:"good" ();
      "{\"v\":1,\"id\":\"q\",\"cmd\":\"shutdown\"}";
    ]
  in
  let resps = List.map parse_resp (Server.handle_lines server lines) in
  check_int "every line answered" 6 (List.length resps);
  (match (List.nth resps 0).P.outcome with
  | P.Error (P.Bad_request, _) -> ()
  | _ -> Alcotest.fail "malformed json must be bad_request");
  (match (List.nth resps 1).P.outcome with
  | P.Error (P.Bad_request, msg) ->
    check "names the unknown problem" true
      (msg = "unknown problem \"frobnicate\"")
  | _ -> Alcotest.fail "unknown problem must be bad_request");
  check "ping answered" true ((List.nth resps 2).P.outcome = P.Pong);
  (match (List.nth resps 3).P.outcome with
  | P.Stats_report kvs ->
    (* controls run after the cycle's jobs: the good request is visible *)
    check_int "stats sees the served job" 1 (List.assoc "served" kvs)
  | _ -> Alcotest.fail "stats must report");
  (match (List.nth resps 4).P.outcome with
  | P.Solved _ -> ()
  | _ -> Alcotest.fail "good request must be served");
  check "shutdown acks" true ((List.nth resps 5).P.outcome = P.Pong);
  check "shutdown latched" true (Server.shutdown_requested server)

let test_span_report_on_request () =
  let server = Server.create () in
  let run id =
    match
      Server.handle_request server
        (P.request ~id ~problem:"flood"
           ~spec:(P.Family { family = "path"; n = 30; seed = 1; a = 1; delta = 3 })
           ~want_span:true ())
    with
    | { P.outcome = P.Solved s; _ } -> s
    | _ -> Alcotest.fail "flood request failed"
  in
  let _cold = run "c" in
  let warm = run "w" in
  check "warm hit flagged" true warm.P.cache_hit;
  match warm.P.span with
  | None -> Alcotest.fail "span requested but missing"
  | Some report ->
    check "report schema marker" true
      (Option.bind (Json.member "tl_obs_report" report) Json.to_int = Some 1);
    let span = Option.get (Json.member "span" report) in
    check "span is the request span" true
      (Option.bind (Json.member "name" span) Json.to_str
      = Some "serve:request");
    let counters =
      Option.value ~default:[]
        (Option.bind (Json.member "counters" span) Json.to_assoc)
    in
    check "serve:cache_hit counter in the span" true
      (List.assoc_opt "serve:cache_hit" counters = Some (Json.Num 1.))

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* grid builds floor(sqrt n)^2 nodes, so a shard count can clear
   admission against the declared n yet exceed the built graph — that
   must still be a structured bad_request, not a generic failure. *)
let test_shard_vs_built_n () =
  let server = Server.create () in
  let spec = P.Family { family = "grid"; n = 10; seed = 1; a = 1; delta = 3 } in
  (match
     Server.handle_request server
       (P.request ~id:"g" ~problem:"flood" ~spec ~engine:"shard:10"
          ~shards:10 ~want_span:false ())
   with
  | { P.outcome = P.Error (P.Bad_request, msg); _ } ->
    check "names the built size" true
      (contains_sub msg "built instance size 9")
  | { P.outcome = P.Error (_, msg); _ } ->
    Alcotest.fail ("wrong error kind: " ^ msg)
  | _ -> Alcotest.fail "oversized shard count must be rejected");
  match
    Server.handle_request server
      (P.request ~id:"g2" ~problem:"flood" ~spec ~engine:"shard:4" ~shards:4
         ~want_span:false ())
  with
  | { P.outcome = P.Solved _; _ } -> ()
  | _ -> Alcotest.fail "in-bounds shard request failed"

let test_instance_cache_eviction () =
  let server =
    Server.create
      ~config:{ Server.default_config with Server.cache_slots = 1 }
      ()
  in
  let solve seed =
    match
      Server.handle_request server
        (P.request ~problem:"flood"
           ~spec:
             (P.Family
                { family = "random-tree"; n = 30; seed; a = 1; delta = 3 })
           ~want_span:false ())
    with
    | { P.outcome = P.Solved s; _ } -> s.P.cache_hit
    | _ -> Alcotest.fail "request failed"
  in
  check "A cold" false (solve 1);
  check "A warm" true (solve 1);
  check "B evicts A" false (solve 2);
  check "A cold again" false (solve 1);
  check "A warm again" true (solve 1)

(* ---------- the daemon as a subprocess ---------- *)

let daemon = "../bin/tree_local_serve.exe"

let with_daemon args f =
  let cmd = Printf.sprintf "%s %s" daemon args in
  let inc, out = Unix.open_process cmd in
  Fun.protect
    ~finally:(fun () -> ignore (Unix.close_process (inc, out)))
    (fun () -> f inc out)

let test_subprocess_roundtrip () =
  with_daemon "" (fun inc out ->
      output_string out (req_line ~id:"e2e" ());
      output_string out "\n{\"v\":1,\"id\":\"bye\",\"cmd\":\"shutdown\"}\n";
      flush out;
      let r1 = parse_resp (input_line inc) in
      let r2 = parse_resp (input_line inc) in
      check_str "request id echoed" "e2e" r1.P.rid;
      (match r1.P.outcome with
      | P.Solved s ->
        (* the daemon's digest equals an in-process one-shot: digests are
           process-independent *)
        let server = Server.create () in
        let local =
          match
            Server.handle_request server
              (P.request ~id:"local" ~problem:"flood"
                 ~spec:
                   (P.Family
                      { family = "random-tree"; n = 40; seed = 1; a = 1; delta = 3 })
                 ~want_span:false ())
          with
          | { P.outcome = P.Solved s; _ } -> s
          | _ -> Alcotest.fail "local run failed"
        in
        check_str "digest stable across processes" local.P.digest s.P.digest
      | _ -> Alcotest.fail "daemon did not solve");
      check "shutdown acked" true (r2.P.outcome = P.Pong);
      check "daemon exits after shutdown" true
        (match input_line inc with
        | exception End_of_file -> true
        | _ -> false))

(* Deterministic subprocess backpressure: the whole burst goes down the
   pipe in one write well under PIPE_BUF, so the daemon's greedy read
   phase sees all lines in a single admission cycle. *)
let test_subprocess_backpressure () =
  with_daemon "--depth 2" (fun inc out ->
      let burst =
        String.concat ""
          (List.init 6 (fun i ->
               req_line ~id:(Printf.sprintf "r%d" i) ~n:30 () ^ "\n"))
      in
      check "burst fits one atomic pipe write" true
        (String.length burst < 4096);
      output_string out burst;
      flush out;
      let resps = List.init 6 (fun _ -> parse_resp (input_line inc)) in
      let tally p = List.length (List.filter p resps) in
      check_int "exactly depth jobs served" 2
        (tally (fun r ->
             match r.P.outcome with P.Solved _ -> true | _ -> false));
      check_int "the overflow rejected" 4
        (tally (fun r ->
             match r.P.outcome with
             | P.Error (P.Rejected, _) -> true
             | _ -> false));
      check "responses in arrival order" true
        (List.map (fun r -> r.P.rid) resps
        = List.init 6 (Printf.sprintf "r%d"));
      output_string out "{\"v\":1,\"cmd\":\"shutdown\"}\n";
      flush out;
      ignore (input_line inc))

(* The observability controls through the real daemon: `metrics` returns
   a decodable tl_metrics = 1 snapshot whose serving counters and
   latency histogram agree with the requests just served (and with the
   `stats` control's own numbers), `tail` returns the flight recorder's
   view of the same burst. *)
let test_subprocess_metrics_and_tail () =
  with_daemon "" (fun inc out ->
      let served = 3 in
      for i = 1 to served do
        output_string out (req_line ~id:(Printf.sprintf "r%d" i) ~seed:i ());
        output_char out '\n'
      done;
      output_string out "{\"v\":1,\"id\":\"st\",\"cmd\":\"stats\"}\n";
      output_string out "{\"v\":1,\"id\":\"m\",\"cmd\":\"metrics\"}\n";
      output_string out "{\"v\":1,\"id\":\"t\",\"cmd\":\"tail\"}\n";
      output_string out "{\"v\":1,\"id\":\"bye\",\"cmd\":\"shutdown\"}\n";
      flush out;
      for i = 1 to served do
        match (parse_resp (input_line inc)).P.outcome with
        | P.Solved _ -> ()
        | _ -> Alcotest.failf "request %d not solved" i
      done;
      let stats =
        match (parse_resp (input_line inc)).P.outcome with
        | P.Stats_report kvs -> kvs
        | _ -> Alcotest.fail "stats control did not answer"
      in
      let snap =
        match (parse_resp (input_line inc)).P.outcome with
        | P.Metrics_report j -> (
          match Metrics.snapshot_of_json j with
          | Ok s -> s
          | Error msg -> Alcotest.fail ("snapshot did not decode: " ^ msg))
        | _ -> Alcotest.fail "metrics control did not answer"
      in
      let counter name =
        Option.value ~default:(-1) (List.assoc_opt name snap.Metrics.counters)
      in
      check_int "served counter" served (counter "serve_served_total");
      check_int "received counter" served (counter "serve_received_total");
      check_int "stats agrees with registry" (counter "serve_served_total")
        (Option.get (List.assoc_opt "served" stats));
      (* the aggregate latency histogram holds exactly one observation
         per served request *)
      (match List.assoc_opt "serve_request_seconds" snap.Metrics.histograms with
      | None -> Alcotest.fail "aggregate latency histogram missing"
      | Some h ->
        check_int "histogram count == served" served h.Metrics.h_count;
        check "latency sum positive" true (h.Metrics.h_sum > 0.));
      (* ...and the per-(problem, engine) labeled histogram exists *)
      check "labeled latency histogram" true
        (List.mem_assoc
           "serve_request_seconds{problem=\"flood\",engine=\"seq\"}"
           snap.Metrics.histograms);
      (* the flight recorder saw the whole burst, in order, all ok *)
      let events =
        match (parse_resp (input_line inc)).P.outcome with
        | P.Tail_report js -> List.filter_map Metrics.Recorder.event_of_json js
        | _ -> Alcotest.fail "tail control did not answer"
      in
      check_int "no event lost in decode" (List.length events)
        (List.length
           (List.filter
              (fun e -> e.Metrics.Recorder.kind = "request")
              events));
      check_int "one event per request" served (List.length events);
      check "all ok" true
        (List.for_all (fun e -> e.Metrics.Recorder.outcome = "ok") events);
      ignore (input_line inc))

(* Socket-path claiming: a stale socket file is replaced, a path a
   running daemon answers on is refused without unlinking it, and a
   non-socket file is never touched. *)

let connect_probe path =
  let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close s with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect s (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false)

let wait_for_socket path =
  let rec go tries =
    if tries = 0 then Alcotest.fail "daemon never came up on its socket"
    else if not (connect_probe path) then begin
      Unix.sleepf 0.02;
      go (tries - 1)
    end
  in
  go 250

let spawn_socket_daemon path =
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process daemon
      [| daemon; "--socket"; path |]
      dev_null dev_null dev_null
  in
  Unix.close dev_null;
  pid

let test_socket_path_claiming () =
  (* a regular file at the path is refused and left alone *)
  let file = Filename.temp_file "tl_serve_not_a_socket" "" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let rc =
        Sys.command
          (Printf.sprintf "%s --socket %s 2>/dev/null" daemon
             (Filename.quote file))
      in
      check "non-socket path refused" true (rc <> 0);
      check "non-socket file untouched" true (Sys.file_exists file));
  let path = Filename.temp_file "tl_serve" ".sock" in
  Unix.unlink path;
  (* leave a stale socket behind: bound once, nobody accepting *)
  let stale = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind stale (Unix.ADDR_UNIX path);
  Unix.close stale;
  let pid = spawn_socket_daemon path in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      (* the daemon replaced the stale socket and accepts *)
      wait_for_socket path;
      (* a second daemon on the live path refuses, promptly *)
      let rc =
        Sys.command
          (Printf.sprintf "%s --socket %s 2>/dev/null" daemon
             (Filename.quote path))
      in
      check "second daemon refused" true (rc <> 0);
      (* ... and did not unlink the live daemon's socket: it still answers *)
      let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect s (Unix.ADDR_UNIX path);
      let ic = Unix.in_channel_of_descr s
      and oc = Unix.out_channel_of_descr s in
      output_string oc "{\"v\":1,\"id\":\"bye\",\"cmd\":\"shutdown\"}\n";
      flush oc;
      let r = parse_resp (input_line ic) in
      check "live daemon still answers" true (r.P.outcome = P.Pong);
      (try Unix.close s with Unix.Unix_error _ -> ());
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      check "socket removed on shutdown" false (Sys.file_exists path))

let () =
  Alcotest.run "tl_serve"
    [
      ("jobq", [ Alcotest.test_case "bounded fifo" `Quick test_jobq_basics ]);
      ( "protocol",
        [
          Alcotest.test_case "request round-trip + defaults" `Quick
            test_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "edge-list spec keys" `Quick test_spec_key_edges;
          Alcotest.test_case "knob validation" `Quick test_resolve_knobs;
        ] );
      ("differential", qsuite [ prop_serve_differential ]);
      ( "cycle",
        [
          Alcotest.test_case "batching + arrival order" `Quick
            test_cycle_batching_and_order;
          Alcotest.test_case "backpressure rejects, never hangs" `Quick
            test_cycle_backpressure;
          Alcotest.test_case "errors and controls" `Quick
            test_cycle_errors_and_controls;
          Alcotest.test_case "per-request span report" `Quick
            test_span_report_on_request;
          Alcotest.test_case "shard bound on the built graph" `Quick
            test_shard_vs_built_n;
          Alcotest.test_case "instance cache eviction" `Quick
            test_instance_cache_eviction;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "stdio round-trip + shutdown" `Quick
            test_subprocess_roundtrip;
          Alcotest.test_case "burst backpressure" `Quick
            test_subprocess_backpressure;
          Alcotest.test_case "metrics + tail controls" `Quick
            test_subprocess_metrics_and_tail;
          Alcotest.test_case "socket-path claiming" `Quick
            test_socket_path_claiming;
        ] );
    ]
