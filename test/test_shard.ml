(* Differential battery for the sharded halo-exchange backend: plans,
   shard:{2,4,8} x pool:{1,4} bit-identical to the sequential stepper
   (labelings, per-round trace records, round ledgers, failure
   behavior) on random / balanced / path trees and forest unions, plus
   the theorem-level engine knob. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Topology = Tl_engine.Topology
module Engine = Tl_engine.Engine
module Trace = Tl_engine.Trace
module Pool = Tl_engine.Pool
module Plan = Tl_shard.Plan
module Shard = Tl_shard.Shard
module Ids = Tl_local.Ids
module Round_cost = Tl_local.Round_cost
module Span = Tl_obs.Span
module Theorem1 = Tl_core.Theorem1
module Theorem2 = Tl_core.Theorem2
module Complexity = Tl_core.Complexity

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let shard_counts = [ 2; 4; 8 ]
let pool_widths = [ 1; 4 ]

(* The acceptance families: random trees, balanced regular trees, paths
   and forest unions. *)
let family ~n ~seed ~pick =
  let n = max 2 n in
  match pick mod 4 with
  | 0 -> Gen.random_tree ~n ~seed
  | 1 -> Gen.balanced_regular_tree ~delta:(2 + (seed mod 4)) ~n
  | 2 -> Gen.path n
  | _ -> Gen.forest_union ~n ~arboricity:2 ~seed

let flood_step ~round:_ ~node:_ s ~neighbors =
  s || List.exists (fun (_, _, su) -> su) neighbors

let mis_step ids ~round:_ ~node:v s ~neighbors =
  if s <> 0 then s
  else if List.exists (fun (_, _, su) -> su = 1) neighbors then 2
  else if
    List.for_all (fun (u, _, su) -> su <> 0 || ids.(u) < ids.(v)) neighbors
  then 1
  else 0

(* ---------- plan invariants ---------- *)

let plan_invariants topo s =
  let plan = Plan.build ~topo ~shards:s in
  let shards = plan.Plan.shards in
  let np = topo.Topology.n_present in
  (* owned slices partition present_nodes in order *)
  let concat =
    Array.concat (Array.to_list (Array.map (fun sh -> sh.Plan.owned) shards))
  in
  concat = topo.Topology.present_nodes
  && Array.length shards = max 1 (min s (max 1 np))
  && Array.for_all
       (fun sh ->
         (* each owned row reproduces the global CSR row, remapped *)
         let ok = ref (sh.Plan.n_owned <= sh.Plan.n_local) in
         for l = 0 to sh.Plan.n_owned - 1 do
           let v = sh.Plan.l2g.(l) in
           let row_g =
             List.init
               (topo.Topology.off.(v + 1) - topo.Topology.off.(v))
               (fun i ->
                 ( topo.Topology.adj.(topo.Topology.off.(v) + i),
                   topo.Topology.eid.(topo.Topology.off.(v) + i) ))
           in
           let row_l =
             List.init
               (sh.Plan.off.(l + 1) - sh.Plan.off.(l))
               (fun i ->
                 ( sh.Plan.l2g.(sh.Plan.adj.(sh.Plan.off.(l) + i)),
                   sh.Plan.eid.(sh.Plan.off.(l) + i) ))
           in
           if row_g <> row_l then ok := false
         done;
         (* every ghost is owned by some other shard at the routed slot *)
         for h = sh.Plan.n_owned to sh.Plan.n_local - 1 do
           let v = sh.Plan.l2g.(h) in
           let o = plan.Plan.owner.(v) in
           if o = sh.Plan.id || o < 0 then ok := false
         done;
         !ok)
       shards
  (* a cross edge is counted by both endpoint shards *)
  && Plan.cut_edges_total plan mod 2 = 0
  && Plan.imbalance_permille plan >= 1000

let prop_plan_invariants =
  QCheck.Test.make ~name:"Plan.build invariants across families" ~count:60
    QCheck.(
      quad (int_range 2 150) (int_range 0 100000) (int_range 0 3)
        (int_range 1 9))
    (fun (n, seed, pick, s) ->
      let g = family ~n ~seed ~pick in
      plan_invariants (Topology.compile (Semi_graph.of_graph g)) s)

let prop_plan_on_subsets =
  QCheck.Test.make ~name:"Plan.build on masked views" ~count:40
    QCheck.(triple (int_range 3 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let keep = Array.init (Graph.n_nodes g) (fun v -> v mod 3 <> 2) in
      let topo = Topology.compile (Semi_graph.of_node_subset g keep) in
      List.for_all (fun s -> plan_invariants topo s) [ 1; 2; 4; 8 ])

(* ---------- engine-level differential: states, rounds, traces ---------- *)

(* Runs [f] once per backend and compares outcomes AND the per-round
   trace records: the sharded stepper must reproduce the sequential
   active/changed/unhalted counts round by round, not just the final
   labeling (the "round ledger" at engine level). *)
let record_key r = (r.Trace.round, r.Trace.active, r.Trace.changed, r.Trace.unhalted)

let outcome_and_records f mode =
  let trace = Trace.create ~label:"diff" () in
  let o = f ~mode ~trace in
  (o, List.map record_key (Trace.records trace))

let shard_matches_seq ?(pools = pool_widths) f =
  let seq_o, seq_r = outcome_and_records f Engine.Seq in
  List.for_all
    (fun s ->
      List.for_all
        (fun w ->
          let saved = !Pool.default_workers in
          Pool.default_workers := w;
          Fun.protect
            ~finally:(fun () -> Pool.default_workers := saved)
            (fun () ->
              let o, r = outcome_and_records f (Engine.Shard s) in
              o.Engine.rounds = seq_o.Engine.rounds
              && o.Engine.states = seq_o.Engine.states
              && r = seq_r))
        pools)
    shard_counts

let prop_flood_differential =
  QCheck.Test.make ~name:"flood: shard x pool == seq (states + records)"
    ~count:40
    QCheck.(triple (int_range 2 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      List.for_all
        (fun sched ->
          shard_matches_seq (fun ~mode ~trace ->
              Engine.run_until_stable ~mode ~sched ~trace ~topo
                ~init:(fun v -> v = 0)
                ~step:flood_step ~equal:Bool.equal
                ~max_rounds:(Graph.n_nodes g + 1)
                ()))
        [ Engine.Active_set; Engine.Full_scan ])

let prop_mis_differential =
  QCheck.Test.make ~name:"MIS machine: shard x pool == seq" ~count:40
    QCheck.(triple (int_range 2 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let n = Graph.n_nodes g in
      let ids = Ids.permuted ~n ~seed:(seed + 3) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      shard_matches_seq (fun ~mode ~trace ->
          Engine.run ~mode ~trace ~topo
            ~init:(fun _ -> 0)
            ~step:(mis_step ids)
            ~halted:(fun s -> s <> 0)
            ~max_rounds:(n + 1) ()))

let prop_run_rounds_differential =
  QCheck.Test.make ~name:"run_rounds: shard x pool == seq, exact count"
    ~count:30
    QCheck.(triple (int_range 2 120) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let ids = Ids.permuted ~n:(Graph.n_nodes g) ~seed:(seed + 5) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let r = 3 + (seed mod 5) in
      let seq, shard_outcomes =
        ( Engine.run_rounds ~mode:Engine.Seq ~topo
            ~init:(fun v -> ids.(v))
            ~step:(fun ~round:_ ~node:_ s ~neighbors ->
              List.fold_left (fun acc (_, _, su) -> max acc su) s neighbors)
            ~rounds:r (),
          List.map
            (fun s ->
              Engine.run_rounds ~mode:(Engine.Shard s) ~topo
                ~init:(fun v -> ids.(v))
                ~step:(fun ~round:_ ~node:_ s ~neighbors ->
                  List.fold_left (fun acc (_, _, su) -> max acc su) s neighbors)
                ~rounds:r ())
            shard_counts )
      in
      seq.Engine.rounds = r
      && List.for_all
           (fun o ->
             o.Engine.rounds = r && o.Engine.states = seq.Engine.states)
           shard_outcomes)

(* ---------- failure parity ---------- *)

let failure_message f =
  match f () with exception Failure m -> Some m | _ -> None

let test_failure_parity () =
  let topo = Topology.compile (Semi_graph.of_graph (Gen.path 9)) in
  let frozen mode () =
    Engine.run ~mode ~topo
      ~init:(fun _ -> 0)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s)
      ~halted:(fun _ -> false)
      ~max_rounds:10 ()
  in
  let blinker mode () =
    Engine.run_until_stable ~mode ~topo
      ~init:(fun _ -> false)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> not s)
      ~equal:Bool.equal ~max_rounds:7 ()
  in
  let m_frozen = failure_message (frozen Engine.Seq) in
  let m_blinker = failure_message (blinker Engine.Seq) in
  check "seq frozen raises" true (m_frozen <> None);
  check "seq blinker raises" true (m_blinker <> None);
  List.iter
    (fun s ->
      Alcotest.(check (option string))
        (Printf.sprintf "frozen parity shard:%d" s)
        m_frozen
        (failure_message (frozen (Engine.Shard s)));
      Alcotest.(check (option string))
        (Printf.sprintf "blinker parity shard:%d" s)
        m_blinker
        (failure_message (blinker (Engine.Shard s))))
    shard_counts

let test_unlinked_backend_message () =
  (* the hook is installed by linking tl_shard; pulling it out must
     produce the documented failure, and restoring it must recover *)
  let saved = !Engine.shard_backend in
  Engine.shard_backend := None;
  Fun.protect
    ~finally:(fun () -> Engine.shard_backend := saved)
    (fun () ->
      let topo = Topology.compile (Semi_graph.of_graph (Gen.path 3)) in
      match
        Engine.run ~mode:(Engine.Shard 2) ~topo
          ~init:(fun _ -> 0)
          ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s)
          ~halted:(fun _ -> true)
          ~max_rounds:1 ()
      with
      | exception Failure m ->
        check "unlinked failure message" true
          (m = "Engine: shard mode requested but the tl_shard backend is \
                not linked")
      | _ -> Alcotest.fail "expected Failure without a backend")

let test_empty_present_set () =
  let g = Gen.path 4 in
  let topo = Topology.compile (Semi_graph.of_node_subset g (Array.make 4 false)) in
  List.iter
    (fun s ->
      let o =
        Engine.run ~mode:(Engine.Shard s) ~topo
          ~init:(fun _ -> 0)
          ~step:(fun ~round:_ ~node:_ st ~neighbors:_ -> st + 1)
          ~halted:(fun _ -> false)
          ~max_rounds:5 ()
      in
      check_int (Printf.sprintf "empty view costs 0 rounds shard:%d" s) 0
        o.Engine.rounds)
    shard_counts

(* ---------- mode strings and direct API ---------- *)

let test_mode_strings () =
  List.iter
    (fun m ->
      check
        ("round-trip " ^ Engine.mode_to_string m)
        true
        (Engine.mode_of_string (Engine.mode_to_string m) = m))
    [ Engine.Shard 1; Engine.Shard 2; Engine.Shard 16 ];
  let saved = !Engine.default_shards in
  Engine.default_shards := 6;
  check "bare \"shard\" reads default_shards" true
    (Engine.mode_of_string "shard" = Engine.Shard 6);
  Engine.default_shards := saved;
  List.iter
    (fun s ->
      check ("rejects " ^ s) true
        (match Engine.mode_of_string s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ "shard:0"; "shard:x"; "shard:" ]

let test_direct_api () =
  let g = Gen.random_tree ~n:300 ~seed:7 in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  let seq =
    Engine.run_until_stable ~mode:Engine.Seq ~topo
      ~init:(fun v -> v = 0)
      ~step:flood_step ~equal:Bool.equal ~max_rounds:301 ()
  in
  List.iter
    (fun pool ->
      let o =
        Shard.run_until_stable ~shards:5 ~pool ~topo
          ~init:(fun v -> v = 0)
          ~step:flood_step ~equal:Bool.equal ~max_rounds:301 ()
      in
      check (Printf.sprintf "Shard.run_until_stable pool:%d" pool) true
        (o.Engine.states = seq.Engine.states
        && o.Engine.rounds = seq.Engine.rounds))
    pool_widths;
  (* the scoped ?pool override must restore the ambient width *)
  let saved = !Pool.default_workers in
  ignore
    (Shard.run ~shards:3 ~pool:2 ~topo
       ~init:(fun v -> v = 0)
       ~step:flood_step
       ~halted:(fun s -> s)
       ~max_rounds:301 ());
  check_int "pool width restored" saved !Pool.default_workers

(* ---------- spans: the per-shard observability contract ---------- *)

let rec find_spans pred s =
  let here = if pred s then [ s ] else [] in
  here @ List.concat_map (find_spans pred) (Span.children s)

let test_shard_spans () =
  let g = Gen.random_tree ~n:500 ~seed:11 in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  Plan.clear_cache ();
  let (), root =
    Span.run "shard-span-test" (fun () ->
        ignore
          (Engine.run_until_stable ~mode:(Engine.Shard 4) ~topo
             ~init:(fun v -> v = 0)
             ~step:flood_step ~equal:Bool.equal ~max_rounds:501 ()))
  in
  let shard_spans =
    find_spans
      (fun s ->
        String.length (Span.name s) > 6
        && String.sub (Span.name s) 0 6 = "shard:")
      root
  in
  check_int "one child span per shard" 4 (List.length shard_spans);
  List.iter
    (fun s ->
      let c = Span.counters s in
      List.iter
        (fun key ->
          check
            (Printf.sprintf "%s carries %s" (Span.name s) key)
            true (List.mem_assoc key c))
        [
          "shard:cut_edges"; "shard:halo_words"; "shard:imbalance";
          "shard:exchange_rounds"; "shard:owned"; "shard:halo";
        ])
    shard_spans;
  let root_counters = Span.counters root in
  check_int "aggregate shard count" 4
    (List.assoc "shard:shards" root_counters);
  check "plan miss counted" true
    (List.mem_assoc "shard:plan_miss" root_counters);
  (* flood floods the whole tree: every cross-boundary edge carried at
     least one message, so the aggregate halo traffic is positive and at
     least the directed cut size *)
  check "halo traffic at least cut size" true
    (List.assoc "shard:halo_words" root_counters
    >= List.assoc "shard:cut_edges" root_counters / 2)

let test_plan_cache () =
  Plan.clear_cache ();
  let g = Gen.random_tree ~n:80 ~seed:3 in
  let sg = Semi_graph.of_graph g in
  let topo = Topology.compile sg in
  let _, hit1 = Plan.build_cached ~topo ~shards:4 in
  let p2, hit2 = Plan.build_cached ~topo ~shards:4 in
  let _, hit3 = Plan.build_cached ~topo ~shards:8 in
  check "first build misses" true (not hit1);
  check "second build hits" true hit2;
  check "different shard count misses" true (not hit3);
  check "cached plan reuses the topology" true (p2.Plan.topo == topo);
  (* masking a node bumps the generation: the stale plan is unreachable *)
  Semi_graph.hide_node sg 0;
  let topo2 = Topology.compile sg in
  let _, hit4 = Plan.build_cached ~topo:topo2 ~shards:4 in
  check "mutation invalidates the plan" true (not hit4)

(* Both caches under interleaved lookups — the serving daemon's access
   pattern, where batched same-topology requests alternate with other
   topologies and shard counts. Hit/miss counters must account for
   every lookup exactly, and a generation bump must never let a stale
   snapshot or plan resurface. *)
let test_cache_interleaved () =
  Topology.clear_cache ();
  Plan.clear_cache ();
  let th0, tm0 = Topology.cache_stats () in
  let ph0, pm0 = Plan.cache_stats () in
  let sg_a = Semi_graph.of_graph (Gen.random_tree ~n:60 ~seed:5) in
  let sg_b = Semi_graph.of_graph (Gen.path 40) in
  (* interleave the two views: A miss, B miss, A hit, B hit *)
  let ta, ha = Topology.compile_cached_stat sg_a in
  let tb, hb = Topology.compile_cached_stat sg_b in
  let ta', ha' = Topology.compile_cached_stat sg_a in
  let tb', hb' = Topology.compile_cached_stat sg_b in
  check "interleaved misses then hits" true
    ((not ha) && (not hb) && ha' && hb');
  check "snapshots interleave-stable" true (ta == ta' && tb == tb');
  (* interleave plans across topologies and shard counts *)
  let _, p1 = Plan.build_cached ~topo:ta ~shards:2 in
  let _, p2 = Plan.build_cached ~topo:tb ~shards:2 in
  let _, p3 = Plan.build_cached ~topo:ta ~shards:3 in
  let _, p4 = Plan.build_cached ~topo:ta ~shards:2 in
  let _, p5 = Plan.build_cached ~topo:tb ~shards:2 in
  check "plan keying is (view, shards)" true
    ((not p1) && (not p2) && (not p3) && p4 && p5);
  let th1, tm1 = Topology.cache_stats () in
  let ph1, pm1 = Plan.cache_stats () in
  check_int "topology hits accounted" 2 (th1 - th0);
  check_int "topology misses accounted" 2 (tm1 - tm0);
  check_int "plan hits accounted" 2 (ph1 - ph0);
  check_int "plan misses accounted" 3 (pm1 - pm0);
  (* hide an edge of A: its generation bumps, so both the snapshot and
     every plan derived from it must be rebuilt — while B's entries
     survive the interleaving untouched *)
  let slots t = t.Topology.off.(Array.length t.Topology.off - 1) in
  Semi_graph.hide_edge sg_a 0;
  let ta2, ha2 = Topology.compile_cached_stat sg_a in
  check "hide_edge invalidates the snapshot" true (not ha2);
  check "fresh snapshot, not the stale one" true (not (ta2 == ta));
  check_int "mutation visible in the recompile" (slots ta - 2) (slots ta2);
  let _, p6 = Plan.build_cached ~topo:ta2 ~shards:2 in
  check "stale-generation plan not reused" true (not p6);
  let _, p7 = Plan.build_cached ~topo:tb ~shards:2 in
  check "unrelated view's plan survives" true p7;
  check "unrelated snapshot survives" true
    (snd (Topology.compile_cached_stat sg_b))

(* ---------- theorem-level: labelings and ledgers end to end ---------- *)

module Labeling = Tl_problems.Labeling

let mis_spec =
  {
    Theorem1.problem = Tl_problems.Mis.problem;
    base_algorithm = Tl_symmetry.Algos.mis;
    solve_edge_list = Tl_problems.Mis.solve_edge_list;
  }

let matching_spec =
  {
    Theorem2.problem = Tl_problems.Matching.problem;
    base_algorithm = Tl_symmetry.Algos.maximal_matching;
    solve_node_list = Tl_problems.Matching.solve_node_list;
  }

let labels_equal g l1 l2 =
  List.init (Graph.n_half_edges g) (fun h -> Labeling.get l1 h)
  = List.init (Graph.n_half_edges g) (fun h -> Labeling.get l2 h)

let prop_theorem1_sharded_bit_identical =
  QCheck.Test.make
    ~name:"Theorem 12 MIS: shard x pool == seq (labeling + ledger)" ~count:10
    QCheck.(triple (int_range 2 220) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let tree =
        match pick mod 3 with
        | 0 -> Gen.random_tree ~n:(max 2 n) ~seed
        | 1 -> Gen.balanced_regular_tree ~delta:3 ~n:(max 2 n)
        | _ -> Gen.path (max 2 n)
      in
      let n = Graph.n_nodes tree in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let seq =
        Theorem1.run ~spec:mis_spec ~tree ~ids ~f:Complexity.f_linear ()
      in
      List.for_all
        (fun s ->
          List.for_all
            (fun w ->
              let r =
                Theorem1.run ~engine:(Engine.Shard s) ~workers:w
                  ~spec:mis_spec ~tree ~ids ~f:Complexity.f_linear ()
              in
              labels_equal tree seq.Theorem1.labeling r.Theorem1.labeling
              && Round_cost.phases seq.Theorem1.cost
                 = Round_cost.phases r.Theorem1.cost)
            pool_widths)
        [ 2; 8 ])

let prop_theorem2_sharded_bit_identical =
  QCheck.Test.make
    ~name:"Theorem 15 matching: shard == seq (labeling + ledger)" ~count:8
    QCheck.(pair (int_range 2 200) (int_range 0 100000))
    (fun (n, seed) ->
      let graph = Gen.forest_union ~n ~arboricity:2 ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let seq =
        Theorem2.run ~spec:matching_spec ~graph ~a:2 ~ids
          ~f:Complexity.f_linear ()
      in
      List.for_all
        (fun s ->
          let r =
            Theorem2.run ~engine:(Engine.Shard s) ~workers:4
              ~spec:matching_spec ~graph ~a:2 ~ids ~f:Complexity.f_linear ()
          in
          labels_equal graph seq.Theorem2.labeling r.Theorem2.labeling
          && Round_cost.phases seq.Theorem2.cost
             = Round_cost.phases r.Theorem2.cost)
        shard_counts)

let test_engine_knob_restores_default () =
  let saved = !Engine.default_mode in
  let tree = Gen.random_tree ~n:60 ~seed:21 in
  let ids = Ids.permuted ~n:60 ~seed:22 in
  ignore
    (Theorem1.run ~engine:(Engine.Shard 3) ~spec:mis_spec ~tree ~ids
       ~f:Complexity.f_linear ());
  check "default mode restored" true (!Engine.default_mode = saved)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "tl_shard"
    [
      ( "plan",
        qsuite [ prop_plan_invariants; prop_plan_on_subsets ]
        @ [
            Alcotest.test_case "plan cache" `Quick test_plan_cache;
            Alcotest.test_case "interleaved topo+plan caches" `Quick
              test_cache_interleaved;
          ] );
      ( "differential",
        qsuite
          [
            prop_flood_differential;
            prop_mis_differential;
            prop_run_rounds_differential;
          ] );
      ( "failure",
        [
          Alcotest.test_case "max_rounds and stall parity" `Quick
            test_failure_parity;
          Alcotest.test_case "unlinked backend message" `Quick
            test_unlinked_backend_message;
          Alcotest.test_case "empty present set" `Quick
            test_empty_present_set;
        ] );
      ( "api",
        [
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
          Alcotest.test_case "direct Shard.run wrappers" `Quick
            test_direct_api;
        ] );
      ( "obs",
        [ Alcotest.test_case "per-shard spans" `Quick test_shard_spans ] );
      ( "theorems",
        qsuite
          [
            prop_theorem1_sharded_bit_identical;
            prop_theorem2_sharded_bit_identical;
          ]
        @ [
            Alcotest.test_case "engine knob restores default" `Quick
              test_engine_knob_restores_default;
          ] );
    ]
