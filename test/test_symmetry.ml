(* Tests for the truly local algorithms: Cole-Vishkin, Linial, Reduce,
   Algos. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Props = Tl_graph.Props
module Tree = Tl_graph.Tree
module Semi_graph = Tl_graph.Semi_graph
module Ids = Tl_local.Ids
module Labeling = Tl_problems.Labeling
module Nec = Tl_problems.Nec
module CV = Tl_symmetry.Cole_vishkin
module Linial = Tl_symmetry.Linial
module Reduce = Tl_symmetry.Reduce
module Algos = Tl_symmetry.Algos

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_nodes g = List.init (Graph.n_nodes g) Fun.id

(* ---------- log* ---------- *)

let test_log_star () =
  check_int "log* 1" 0 (CV.log_star 1);
  check_int "log* 2" 1 (CV.log_star 2);
  check_int "log* 4" 2 (CV.log_star 4);
  check_int "log* 16" 3 (CV.log_star 16);
  check_int "log* 65536" 4 (CV.log_star 65536);
  check "log* 2^64-ish" true (CV.log_star max_int <= 5)

(* ---------- Cole-Vishkin ---------- *)

let proper_forest_coloring _g parent colors nodes =
  List.for_all
    (fun v ->
      colors.(v) >= 0 && colors.(v) < 3
      && (parent.(v) < 0 || colors.(v) <> colors.(parent.(v))))
    nodes

let test_cv_path () =
  let g = Gen.path 100 in
  let parent = Tree.parents_forest g in
  let ids = Ids.identity 100 in
  let colors, rounds = CV.color3 ~nodes:(all_nodes g) ~parent ~ids in
  check "proper 3-coloring" true (proper_forest_coloring g parent colors (all_nodes g));
  check "rounds log*-ish" true (rounds <= CV.log_star 100 + 12)

let test_cv_star_and_deep_tree () =
  List.iter
    (fun g ->
      let n = Graph.n_nodes g in
      let parent = Tree.parents_forest g in
      let ids = Ids.permuted ~n ~seed:17 in
      let colors, _ = CV.color3 ~nodes:(all_nodes g) ~parent ~ids in
      check "proper" true (proper_forest_coloring g parent colors (all_nodes g)))
    [
      Gen.star 50;
      Gen.kary_tree ~arity:3 ~depth:5;
      Gen.random_tree ~n:500 ~seed:23;
      Gen.path 2;
      Gen.path 1;
    ]

let test_cv_forest () =
  let g = Gen.random_forest ~n:120 ~trees:6 ~seed:4 in
  let parent = Tree.parents_forest g in
  let ids = Ids.spread ~n:120 ~c:2 ~seed:5 in
  let colors, _ = CV.color3 ~nodes:(all_nodes g) ~parent ~ids in
  check "proper on forest" true
    (proper_forest_coloring g parent colors (all_nodes g))

let test_cv_subset_of_nodes () =
  (* color only a sub-forest of a larger graph *)
  let _g = Gen.path 10 in
  let nodes = [ 2; 3; 4 ] in
  let parent = Array.make 10 (-1) in
  parent.(2) <- 3;
  parent.(4) <- 3;
  let ids = Ids.identity 10 in
  let colors, _ = CV.color3 ~nodes ~parent ~ids in
  check "colored subset" true
    (List.for_all (fun v -> colors.(v) >= 0 && colors.(v) < 3) nodes);
  check "parent differs" true
    (colors.(2) <> colors.(3) && colors.(4) <> colors.(3));
  check_int "others untouched" (-1) colors.(0)

let test_cv_large_ids () =
  (* huge id space: still O(log-star) rounds *)
  let g = Gen.path 50 in
  let parent = Tree.parents_forest g in
  let ids = Array.map (fun i -> (i * 1_000_003) + 7) (Ids.identity 50) in
  let colors, rounds = CV.color3 ~nodes:(all_nodes g) ~parent ~ids in
  check "proper" true (proper_forest_coloring g parent colors (all_nodes g));
  check "rounds small" true (rounds <= 16)

let test_cv_runtime_differential () =
  (* the Runtime state-machine execution must also produce a proper
     3-coloring, within its fixed a-priori schedule *)
  List.iter
    (fun g ->
      let n = Graph.n_nodes g in
      let parent = Tree.parents_forest g in
      let ids = Ids.permuted ~n ~seed:21 in
      let sg = Semi_graph.of_graph g in
      let colors, rounds =
        CV.color3_runtime ~sg ~nodes:(all_nodes g) ~parent ~ids
      in
      check "runtime CV proper" true
        (proper_forest_coloring g parent colors (all_nodes g));
      check_int "runtime CV schedule" (CV.schedule_length ~max_id:(Ids.max_id ids))
        rounds;
      (* the array implementation finishes no later than the fixed
         schedule (it detects convergence early) *)
      let _, array_rounds = CV.color3 ~nodes:(all_nodes g) ~parent ~ids in
      check "array version not slower than schedule" true (array_rounds <= rounds))
    [
      Gen.path 60;
      Gen.star 25;
      Gen.random_tree ~n:200 ~seed:22;
      Gen.random_forest ~n:90 ~trees:4 ~seed:24;
      Gen.path 1;
    ]

let prop_cv_runtime_proper =
  QCheck.Test.make ~name:"runtime CV proper on random trees" ~count:30
    QCheck.(pair (int_range 1 150) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Gen.random_tree ~n ~seed in
      let parent = Tree.parents_forest g in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let sg = Semi_graph.of_graph g in
      let colors, _ = CV.color3_runtime ~sg ~nodes:(all_nodes g) ~parent ~ids in
      proper_forest_coloring g parent colors (all_nodes g))

(* ---------- Linial ---------- *)

let neighbors_of g v = Array.to_list (Graph.neighbors g v)

let test_linial_step_properness () =
  let g = Gen.random_tree ~n:200 ~seed:31 in
  let colors = Array.map (fun id -> id - 1) (Ids.permuted ~n:200 ~seed:32) in
  let palette =
    Linial.step
      ~neighbors:(neighbors_of g)
      ~nodes:(all_nodes g) ~colors ~palette:200
      ~max_degree:(Graph.max_degree g)
  in
  check "still proper" true (Props.is_proper_coloring g colors);
  check "palette respected" true (Array.for_all (fun c -> c < palette) colors)

let test_linial_reduce () =
  let g = Gen.random_bounded_degree ~n:300 ~max_degree:6 ~edges:600 ~seed:33 in
  let colors = Array.map (fun id -> id - 1) (Ids.spread ~n:300 ~c:2 ~seed:34) in
  let palette0 = 1 + Array.fold_left max 0 colors in
  let palette, rounds =
    Linial.reduce
      ~neighbors:(neighbors_of g)
      ~nodes:(all_nodes g) ~colors ~palette:palette0
      ~max_degree:(Graph.max_degree g)
  in
  check "proper after reduce" true (Props.is_proper_coloring g colors);
  check "palette shrank" true (palette < palette0);
  check "log*-many rounds" true (rounds <= CV.log_star palette0 + 6);
  check "palette poly in degree" true (palette <= 40 * 40)

let test_primes () =
  check_int "geq 1" 2 (Linial.smallest_prime_geq 1);
  check_int "geq 8" 11 (Linial.smallest_prime_geq 8);
  check_int "geq 13" 13 (Linial.smallest_prime_geq 13);
  check_int "geq 90" 97 (Linial.smallest_prime_geq 90)

(* ---------- Reduce ---------- *)

let test_kw_reduction () =
  let g = Gen.random_bounded_degree ~n:200 ~max_degree:5 ~edges:350 ~seed:35 in
  let delta = Graph.max_degree g in
  let colors = Array.map (fun id -> id - 1) (Ids.permuted ~n:200 ~seed:36) in
  let palette, rounds =
    Reduce.kw_to_delta_plus_one
      ~neighbors:(neighbors_of g)
      ~nodes:(all_nodes g) ~colors ~palette:200 ~delta
  in
  check_int "palette is delta+1" (delta + 1) palette;
  check "proper" true (Props.is_proper_coloring g colors);
  check "colors in range" true (Array.for_all (fun c -> c <= delta) colors);
  (* O(delta * log (K/delta)) rounds *)
  check "round bound" true (rounds <= 2 * (delta + 1) * 10)

let test_to_bound_deg_plus_one () =
  let g = Gen.star 30 in
  let colors = Array.map (fun id -> id - 1) (Ids.identity 30) in
  let _ =
    Reduce.to_bound
      ~neighbors:(neighbors_of g)
      ~nodes:(all_nodes g) ~colors ~palette:30
      ~bound:(fun v -> Graph.degree g v + 1)
  in
  check "proper" true (Props.is_proper_coloring g colors);
  check "leaves use 2 colors" true
    (List.for_all (fun v -> colors.(v) <= 1) (List.init 29 (fun i -> i + 1)))

(* ---------- Algos: base algorithms on semi-graphs ---------- *)

let run_all_problems g seed =
  let n = Graph.n_nodes g in
  let sg = Semi_graph.of_graph g in
  let ids = Ids.permuted ~n ~seed in
  let l1 = Labeling.create g in
  let _ = Algos.deg_plus_one_coloring sg ~ids l1 in
  let ok1 = Nec.is_valid Tl_problems.Coloring.problem_deg_plus_one g l1 in
  let l2 = Labeling.create g in
  let _ = Algos.mis sg ~ids l2 in
  let ok2 = Nec.is_valid Tl_problems.Mis.problem g l2 in
  let l3 = Labeling.create g in
  let _ = Algos.maximal_matching sg ~ids l3 in
  let ok3 = Nec.is_valid Tl_problems.Matching.problem g l3 in
  let l4 = Labeling.create g in
  let _ = Algos.edge_coloring sg ~ids l4 in
  let ok4 = Nec.is_valid Tl_problems.Edge_coloring.problem g l4 in
  ok1 && ok2 && ok3 && ok4

let test_algos_on_families () =
  List.iter
    (fun (name, g) -> check name true (run_all_problems g 41))
    [
      ("path", Gen.path 40);
      ("star", Gen.star 30);
      ("cycle", Gen.cycle 21);
      ("random tree", Gen.random_tree ~n:150 ~seed:42);
      ("grid", Gen.grid 7 7);
      ("triangulated", Gen.triangulated_grid 5);
      ("caterpillar", Gen.caterpillar ~spine:10 ~legs:4);
      ("two nodes", Gen.path 2);
      ("single", Gen.path 1);
      ("complete", Gen.complete 6);
    ]

let test_algos_on_semi_graph_with_rank1 () =
  (* run the base algorithms on a proper semi-graph: half of a path *)
  let g = Gen.path 12 in
  let mask = Array.init 12 (fun v -> v mod 4 < 2) in
  let sg = Semi_graph.of_node_subset g mask in
  let ids = Ids.identity 12 in
  let l = Labeling.create g in
  let _ = Algos.mis sg ~ids l in
  check "valid on semi" true (Nec.validate_semi Tl_problems.Mis.problem sg l = []);
  let l2 = Labeling.create g in
  let _ = Algos.deg_plus_one_coloring sg ~ids l2 in
  check "coloring valid on semi" true
    (Nec.validate_semi Tl_problems.Coloring.problem_deg_plus_one sg l2 = [])

let test_line_structure () =
  let g = Gen.path 5 in
  let sg = Semi_graph.of_graph g in
  let lg, edge_of = Algos.line_structure sg in
  check_int "L nodes" 4 (Graph.n_nodes lg);
  check_int "L edges" 3 (Graph.n_edges lg);
  check_int "edge_of" 0 edge_of.(0);
  (* restricted semi-graph: line structure only covers rank-2 edges *)
  let sg2 = Semi_graph.of_node_subset g [| true; true; true; false; false |] in
  let lg2, _ = Algos.line_structure sg2 in
  check_int "rank-2 only" 2 (Graph.n_nodes lg2)

let test_rounds_depend_on_degree_not_n () =
  (* truly local behaviour: on paths, rounds are roughly constant in n *)
  let rounds_for n =
    let g = Gen.path n in
    let sg = Semi_graph.of_graph g in
    let ids = Ids.permuted ~n ~seed:77 in
    let l = Labeling.create g in
    Algos.deg_plus_one_coloring sg ~ids l
  in
  let r1 = rounds_for 100 in
  let r2 = rounds_for 3000 in
  check "log*-ish growth only" true (r2 - r1 <= 3)

(* ---------- qcheck properties ---------- *)

let prop_cv_proper =
  QCheck.Test.make ~name:"CV 3-coloring proper on random forests" ~count:60
    QCheck.(triple (int_range 2 200) (int_range 1 5) (int_range 0 100000))
    (fun (n, trees, seed) ->
      let trees = min trees n in
      let g = Gen.random_forest ~n ~trees ~seed in
      let parent = Tree.parents_forest g in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let colors, _ = CV.color3 ~nodes:(all_nodes g) ~parent ~ids in
      proper_forest_coloring g parent colors (all_nodes g))

let prop_algos_valid_on_random_trees =
  QCheck.Test.make ~name:"base algorithms valid on random trees" ~count:25
    QCheck.(pair (int_range 1 120) (int_range 0 100000))
    (fun (n, seed) -> run_all_problems (Gen.random_tree ~n ~seed) (seed + 9))

let prop_algos_valid_on_arb_graphs =
  QCheck.Test.make ~name:"base algorithms valid on arboricity-a graphs"
    ~count:15
    QCheck.(triple (int_range 2 80) (int_range 1 3) (int_range 0 100000))
    (fun (n, a, seed) ->
      run_all_problems (Gen.forest_union ~n ~arboricity:a ~seed) (seed + 3))

let prop_linial_step_keeps_proper =
  QCheck.Test.make ~name:"Linial step preserves properness" ~count:40
    QCheck.(pair (int_range 2 120) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Gen.random_tree ~n ~seed in
      let colors = Array.map (fun id -> id - 1) (Ids.permuted ~n ~seed:(seed + 1)) in
      let _ =
        Linial.step
          ~neighbors:(neighbors_of g)
          ~nodes:(all_nodes g) ~colors ~palette:n
          ~max_degree:(Graph.max_degree g)
      in
      Props.is_proper_coloring g colors)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_cv_proper;
      prop_cv_runtime_proper;
      prop_algos_valid_on_random_trees;
      prop_algos_valid_on_arb_graphs;
      prop_linial_step_keeps_proper;
    ]

let () =
  Alcotest.run "tl_symmetry"
    [
      ("log_star", [ Alcotest.test_case "values" `Quick test_log_star ]);
      ( "cole_vishkin",
        [
          Alcotest.test_case "path" `Quick test_cv_path;
          Alcotest.test_case "tree families" `Quick test_cv_star_and_deep_tree;
          Alcotest.test_case "forest" `Quick test_cv_forest;
          Alcotest.test_case "node subset" `Quick test_cv_subset_of_nodes;
          Alcotest.test_case "large ids" `Quick test_cv_large_ids;
          Alcotest.test_case "runtime differential" `Quick test_cv_runtime_differential;
        ] );
      ( "linial",
        [
          Alcotest.test_case "single step" `Quick test_linial_step_properness;
          Alcotest.test_case "full reduction" `Quick test_linial_reduce;
          Alcotest.test_case "primes" `Quick test_primes;
        ] );
      ( "reduce",
        [
          Alcotest.test_case "KW to delta+1" `Quick test_kw_reduction;
          Alcotest.test_case "greedy to deg+1" `Quick test_to_bound_deg_plus_one;
        ] );
      ( "algos",
        [
          Alcotest.test_case "all problems, all families" `Quick test_algos_on_families;
          Alcotest.test_case "semi-graphs with rank-1 edges" `Quick test_algos_on_semi_graph_with_rank1;
          Alcotest.test_case "line structure" `Quick test_line_structure;
          Alcotest.test_case "truly local rounds" `Quick test_rounds_depend_on_degree_not_n;
        ] );
      ("properties", qcheck_tests);
    ]
